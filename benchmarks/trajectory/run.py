"""Run the perf-trajectory suite; write/check ``BENCH_campaign.json``.

Usage (from the repo root)::

    python benchmarks/trajectory/run.py                # measure + write
    python benchmarks/trajectory/run.py --check        # gate vs baseline
    python benchmarks/trajectory/run.py --update       # refresh baseline
    python benchmarks/trajectory/run.py --check --threshold 0.10

``--check`` measures a fresh report, compares it against the committed
baseline (``BENCH_campaign.json`` at the repo root) and exits 1 on any
wall-time regression beyond the threshold; the fresh report is written
to ``--output`` (default: the baseline path plus ``.new`` when
checking) so CI can upload it as an artifact either way.  ``--update``
overwrites the committed baseline -- the reviewed way to accept a
slowdown or record a speedup.

This is a thin wrapper over :mod:`repro.trajectory`; the same flow is
available as ``archline bench --trajectory``.  Methodology:
``docs/BENCHMARKS.md``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.trajectory import (  # noqa: E402  (path bootstrap above)
    DEFAULT_REPORT_NAME,
    compare_reports,
    load_report,
    run_suite,
    write_report,
)
from repro.trajectory.compare import (  # noqa: E402
    DEFAULT_MIN_DELTA,
    DEFAULT_THRESHOLD,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="benchmarks/trajectory/run.py",
        description="Measure the perf-trajectory suite and write or "
        "gate BENCH_campaign.json.",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baseline; exit 1 on "
        "wall-time regression",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="overwrite the committed baseline with this measurement",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=REPO_ROOT / DEFAULT_REPORT_NAME,
        help=f"baseline path (default: {DEFAULT_REPORT_NAME} at the "
        f"repo root)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the fresh report (default: the baseline "
        "path, or '<baseline>.new' with --check)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="relative wall-time regression threshold "
        f"(default {DEFAULT_THRESHOLD:.0%})",
    )
    parser.add_argument(
        "--min-delta",
        type=float,
        default=DEFAULT_MIN_DELTA,
        help="absolute slack in seconds before the relative threshold "
        f"applies (default {DEFAULT_MIN_DELTA}s)",
    )
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrunken campaigns (smoke only; never commit a quick "
        "baseline)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.check and args.update:
        print("--check and --update are mutually exclusive", file=sys.stderr)
        return 2

    def progress(name: str, metrics: dict) -> None:
        print(
            f"  {name}: {metrics['wall_seconds']:.3f}s "
            f"({metrics.get('n_runs', 0):.0f} runs)",
            flush=True,
        )

    print("running trajectory suite...", flush=True)
    report = run_suite(seed=args.seed, quick=args.quick, progress=progress)

    output = args.output
    if output is None:
        output = (
            args.baseline.with_suffix(args.baseline.suffix + ".new")
            if args.check
            else args.baseline
        )
    write_report(output, report)
    print(f"wrote {output}")

    if not args.check:
        return 0
    if not args.baseline.exists():
        print(
            f"no baseline at {args.baseline}; commit one with --update",
            file=sys.stderr,
        )
        return 1
    baseline = load_report(args.baseline)
    result = compare_reports(
        report,
        baseline,
        threshold=args.threshold,
        min_delta=args.min_delta,
    )
    print(result.describe())
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
