"""Benchmark: regenerate Table I (platform summary).

Prints the fitted-vs-paper table and asserts every recovery claim; the
timed body is the rendering/claim evaluation over the shared campaign
fits, plus a dedicated single-platform end-to-end bench (campaign +
fit) to track the cost of the full pipeline.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import table1
from repro.experiments.common import CampaignSettings, run_platform_fit


def test_table1_reproduction(benchmark, fits):
    result = run_once(benchmark, table1.run, fits=fits)
    print()
    print(result.to_text())
    assert result.pass_fraction == 1.0
    benchmark.extra_info["claims"] = f"{result.n_passing}/{result.n_claims}"


def test_single_platform_campaign_and_fit(benchmark, settings):
    """End-to-end cost of one platform's full campaign + joint fit."""
    fitted = benchmark.pedantic(
        run_platform_fit,
        args=("gtx-titan", settings),
        rounds=1,
        iterations=1,
    )
    truth = fitted.truth
    fit = fitted.capped.params
    assert abs(fit.pi1 - truth.pi1) / truth.pi1 < 0.15
    benchmark.extra_info["runs"] = fitted.campaign.n_runs
