"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures, asserts
its reproduction claims, and reports timing via pytest-benchmark.  The
full campaign pass is shared session-wide so the harness stays fast.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import CampaignSettings, run_all_fits


@pytest.fixture(scope="session")
def settings():
    return CampaignSettings()


@pytest.fixture(scope="session")
def fits(settings):
    """Full 12-platform campaign fits, computed once per session."""
    return run_all_fits(settings)


def run_once(benchmark, fn, *args, **kwargs):
    """Run a (possibly expensive) experiment exactly once under timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
