"""Unit tests for the report package and the units helpers."""

import math

import numpy as np
import pytest

from repro import units
from repro.report.compare import (
    Claim,
    claim_close,
    claim_true,
    fraction_passing,
    rel_deviation,
    render_claims,
)
from repro.report.series import log2_label, series_table, sparkline
from repro.report.tables import Table, fmt_num, fmt_pct, fmt_si


class TestUnits:
    def test_round_trips(self):
        assert units.to_pJ(units.pJ(371.0)) == pytest.approx(371.0)
        assert units.to_nJ(units.nJ(5.11)) == pytest.approx(5.11)
        assert units.to_gflops(units.gflops(99.4)) == pytest.approx(99.4)
        assert units.to_gbps(units.gbps(19.1)) == pytest.approx(19.1)
        assert units.to_maccs(units.maccs(149.0)) == pytest.approx(149.0)

    def test_throughput_cost_inverses(self):
        assert units.throughput_to_cost(4e12) == pytest.approx(2.5e-13)
        assert units.cost_to_throughput(2.5e-13) == pytest.approx(4e12)
        with pytest.raises(ValueError):
            units.throughput_to_cost(0.0)
        with pytest.raises(ValueError):
            units.cost_to_throughput(-1.0)

    def test_format_si(self):
        assert units.format_si(4.02e12, "flop/s") == "4.02 Tflop/s"
        assert units.format_si(0.0, "W") == "0 W"
        assert units.format_si(30.4e-12, "J") == "30.4 pJ"


class TestTable:
    def test_render_alignment(self):
        t = Table(columns=["name", "value"])
        t.add_row("a", 1)
        t.add_row("bb", 22)
        lines = t.render().splitlines()
        assert lines[0].startswith("name")
        assert lines[-1].endswith("22")

    def test_wrong_cell_count(self):
        t = Table(columns=["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_title_and_extend(self):
        t = Table(columns=["x"], title="T")
        t.extend([[1], [2]])
        assert t.render().startswith("T\n")
        assert len(t.rows) == 2

    def test_align_validation(self):
        t = Table(columns=["a", "b"], align="l")
        t.add_row(1, 2)
        with pytest.raises(ValueError):
            t.render()

    def test_fmt_helpers(self):
        assert fmt_num(None) == "-"
        assert fmt_num(0) == "0"
        assert fmt_num(math.inf) == "inf"
        assert fmt_si(4.02e12) == "4.02T"
        assert fmt_si(5.11e-9, "J") == "5.11nJ"
        assert fmt_si(None) == "-"
        assert fmt_pct(0.83) == "83%"
        assert fmt_pct(None) == "-"


class TestSeries:
    def test_log2_label(self):
        assert log2_label(0.125) == "1/8"
        assert log2_label(256.0) == "256"
        assert log2_label(1.0) == "1"
        assert log2_label(3.0) == "3"
        with pytest.raises(ValueError):
            log2_label(0.0)

    def test_sparkline_monotone(self):
        line = sparkline([1, 10, 100, 1000])
        assert line[0] == "▁" and line[-1] == "█"
        assert len(line) == 4

    def test_sparkline_flat(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_sparkline_validation(self):
        with pytest.raises(ValueError):
            sparkline([])
        with pytest.raises(ValueError):
            sparkline([1.0, -1.0])
        assert sparkline([1.0, -1.0], log=False)  # linear mode allows it

    def test_series_table(self):
        text = series_table(
            [0.5, 1.0, 2.0],
            {"perf": [1e9, 2e9, 4e9]},
            unit_by_name={"perf": "flop/s"},
        )
        assert "1/2" in text
        assert "4Gflop/s" in text

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            series_table([1.0], {"x": [1.0, 2.0]})


class TestClaims:
    def test_claim_close_pass_and_fail(self):
        assert claim_close("x", 10.0, 10.5).ok
        assert not claim_close("x", 10.0, 20.0).ok
        assert claim_close("x", 0.0, 0.1).ok

    def test_claim_true(self):
        c = claim_true("n", "p", "o", True, "d")
        assert c.ok and c.detail == "d"

    def test_render_claims(self):
        text = render_claims(
            [claim_true("a", "p", "o", True), claim_true("b", "p", "o", False)]
        )
        assert "PASS" in text and "DIVERGES" in text

    def test_fraction_passing(self):
        assert fraction_passing([]) == 1.0
        claims = [claim_true("a", "", "", True), claim_true("b", "", "", False)]
        assert fraction_passing(claims) == 0.5

    def test_rel_deviation(self):
        assert rel_deviation(10.0, 12.0) == pytest.approx(0.2)
        assert rel_deviation(0.0, 0.0) == 0.0
        assert math.isinf(rel_deviation(0.0, 1.0))
