"""Differential harness: the zero plan IS the no-fault path, bit for bit.

Two properties anchor the whole fault subsystem:

* **identity** -- an all-zero :class:`FaultPlan` must leave every
  execution path (single runs, primed batch sweeps, full parallel
  campaigns, session measurement) bit-for-bit identical to running with
  no plan at all, for any worker count;
* **determinism** -- an active plan's corruption is a pure function of
  ``(plan, key)``: re-applying it reproduces the same corrupted arrays,
  NaN positions included.
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.faults import FaultInjector, FaultPlan
from repro.machine.engine import Engine
from repro.machine.kernel import DRAM, KernelSpec
from repro.machine.platforms import platform
from repro.measurement.session import measure_session
from repro.microbench.campaign import CampaignRunner
from repro.microbench.intensity import intensity_sweep
from repro.microbench.runner import BenchmarkRunner

#: Reduced campaign: enough kernels to exercise every sweep path the
#: shards use, small enough to run several times in one test module.
QUICK = dict(
    replicates=1,
    points_per_octave=2,
    target_duration=0.1,
    include_double=False,
    include_cache=False,
    include_chase=False,
)
PLATFORMS = ("gtx-titan", "nuc-gpu")


def run_quick_campaign(faults, max_workers):
    runner = CampaignRunner(
        PLATFORMS, seed=2014, max_workers=max_workers, faults=faults, **QUICK
    )
    fits = runner.run()
    return fits, runner.report


class TestRunnerIdentity:
    def test_single_run_bit_identical(self):
        kernel = KernelSpec(name="k", flops=1e9, traffic={DRAM: 1e9})
        obs = []
        for faults in (None, FaultPlan.zero(seed=2014)):
            runner = BenchmarkRunner(
                platform("gtx-titan"), seed=7, faults=faults
            )
            obs.append(runner.execute(kernel, "intensity"))
        assert obs[0] == obs[1]

    def test_primed_sweep_bit_identical(self):
        """The vectorised run_batch calibration path is also identical."""
        sweeps = []
        for faults in (None, FaultPlan.zero(seed=2014)):
            runner = BenchmarkRunner(
                platform("gtx-titan"), seed=7, faults=faults
            )
            sweeps.append(intensity_sweep(runner, replicates=2))
        assert sweeps[0] == sweeps[1]

    def test_zero_plan_keeps_counters_at_zero(self):
        runner = BenchmarkRunner(
            platform("gtx-titan"), seed=7, faults=FaultPlan.zero()
        )
        intensity_sweep(runner, replicates=1)
        assert runner.runs_failed == 0
        assert runner.retries == 0
        assert runner.quarantined == []
        assert runner.fault_counters.samples_corrupted == 0


class TestCampaignIdentity:
    """``CampaignRunner.run`` under the zero plan == no plan, any workers."""

    @pytest.fixture(scope="class")
    def reference(self):
        return run_quick_campaign(faults=None, max_workers=2)

    @staticmethod
    def assert_fits_identical(fits_a, fits_b):
        assert set(fits_a) == set(fits_b) == set(PLATFORMS)
        for pid in PLATFORMS:
            a, b = fits_a[pid], fits_b[pid]
            assert a.campaign.all_observations == b.campaign.all_observations
            assert a.capped.params == b.capped.params
            assert a.uncapped.params == b.uncapped.params

    @pytest.mark.parametrize("max_workers", [1, 2])
    def test_zero_plan_matches_no_plan(self, reference, max_workers):
        fits, report = run_quick_campaign(
            faults=FaultPlan.zero(seed=2014), max_workers=max_workers
        )
        self.assert_fits_identical(reference[0], fits)
        assert report.ok
        assert report.runs_failed == 0
        assert report.quarantined_cells == ()
        assert report.n_runs == reference[1].n_runs

    def test_session_measurement_identity(self):
        cfg = platform("gtx-titan")
        engine = Engine(cfg, rng=np.random.default_rng(3))
        kernels = [
            KernelSpec(name="k", flops=2e9, traffic={DRAM: 1e9}).scaled(50)
        ]
        trace = engine.run_session(kernels, idle_gap=0.08).trace
        clean = measure_session(trace)
        zeroed = measure_session(trace, faults=FaultPlan.zero(seed=5))
        assert clean == zeroed


class TestSeededDeterminism:
    @given(
        dropout=st.floats(0.0, 0.5),
        jitter=st.floats(0.0, 1e-3),
        nan_rate=st.floats(0.0, 0.3),
        seed=st.integers(0, 2**31),
    )
    def test_corruption_is_a_function_of_plan_and_key(
        self, dropout, jitter, nan_rate, seed
    ):
        plan = FaultPlan(
            seed=seed,
            sample_dropout=dropout,
            timestamp_jitter=jitter,
            nan_rate=nan_rate,
            channel_desync=1e-3,
            desync_probability=0.5,
            saturation_power=55.0,
        )
        times = (np.arange(512) + 0.5) / 1024.0
        power = 50.0 + 10.0 * np.sin(2 * np.pi * 3 * times)
        results = []
        for _ in range(2):
            injector = FaultInjector(plan, key=1)
            # Two rails: the second draw depends on the first having
            # consumed the stream identically.
            a = injector.corrupt_channel("12v", times, power)
            b = injector.corrupt_channel("5v", times, power)
            results.append((a, b))
        for (ta, pa), (tb, pb) in zip(results[0], results[1]):
            np.testing.assert_array_equal(ta, tb)
            np.testing.assert_array_equal(pa, pb)

    @given(seed=st.integers(0, 2**31))
    def test_fault_campaign_reproduces_from_seed(self, seed):
        # Cheap probe: one runner, one kernel, moderate fault rates --
        # the accepted observation stream must reproduce exactly.
        plan = FaultPlan(seed=seed, sample_dropout=0.3, run_failure_rate=0.3)
        kernel = KernelSpec(name="k", flops=1e9, traffic={DRAM: 1e9})
        outcomes = []
        for _ in range(2):
            runner = BenchmarkRunner(
                platform("nuc-gpu"), seed=3, faults=plan, max_retries=1
            )
            obs = runner.execute_replicates(kernel, "intensity", 3)
            outcomes.append(
                (obs, runner.runs_failed, runner.retries, len(runner.quarantined))
            )
        assert outcomes[0] == outcomes[1]
