"""Resilient execution: retry, quarantine, shard isolation, deadlines.

The accounting identity under test everywhere:

    runs_attempted == n_accepted + runs_failed
    runs_failed    == retries + len(quarantined)

(every failed attempt was either retried or retired its cell), so no
run is ever silently lost -- the acceptance bar for operating a flaky
rig.
"""

import subprocess
import sys
import textwrap
import time

import pytest

from repro.faults import FaultPlan, InjectedRunFailureError
from repro.machine.kernel import DRAM, KernelSpec
from repro.machine.platforms import platform
from repro.microbench.campaign import CampaignRunner, run_shard
from repro.microbench.runner import BenchmarkRunner
from repro.microbench.suite import fit_campaign, run_campaign

QUICK = dict(
    replicates=1,
    points_per_octave=2,
    target_duration=0.1,
    include_double=False,
    include_cache=False,
    include_chase=False,
)


def kernel():
    return KernelSpec(name="k", flops=1e9, traffic={DRAM: 1e9})


def assert_accounting(runner_or_report, n_accepted, quarantined):
    r = runner_or_report
    assert r.runs_attempted == n_accepted + r.runs_failed
    assert r.runs_failed == r.retries + len(quarantined)


class TestRetryAndQuarantine:
    def test_always_failing_cell_is_quarantined(self):
        runner = BenchmarkRunner(
            platform("gtx-titan"),
            seed=1,
            faults=FaultPlan(seed=1, run_failure_rate=1.0),
            max_retries=1,
        )
        obs = runner.execute_replicates(kernel(), "intensity", 1)
        assert obs == []
        assert len(runner.quarantined) == 1
        cell = runner.quarantined[0]
        assert cell.key == ("intensity", "k")
        assert cell.attempts == 2  # 1 try + 1 retry.
        assert "injected" in cell.last_error
        assert runner.runs_attempted == 2
        assert runner.runs_failed == 2
        assert runner.retries == 1
        assert_accounting(runner, n_accepted=0, quarantined=runner.quarantined)

    def test_quarantined_cell_is_skipped_without_attempts(self):
        runner = BenchmarkRunner(
            platform("gtx-titan"),
            seed=1,
            faults=FaultPlan(seed=1, run_failure_rate=1.0),
            max_retries=0,
        )
        runner.execute_replicates(kernel(), "intensity", 1)
        attempts_before = runner.runs_attempted
        obs = runner.execute_replicates(kernel(), "intensity", 2)
        assert obs == []
        assert runner.runs_attempted == attempts_before  # no new attempts.
        assert runner.runs_skipped == 2
        assert len(runner.quarantined) == 1  # not re-quarantined.

    def test_other_cells_survive_a_quarantine(self):
        runner = BenchmarkRunner(
            platform("gtx-titan"),
            seed=1,
            faults=FaultPlan(seed=1, run_failure_rate=1.0),
            max_retries=0,
        )
        runner.execute_replicates(kernel(), "intensity", 1)
        # Disarm the failures: a different cell still executes fine.
        runner.injector.plan = FaultPlan(seed=1, sample_dropout=1e-6)
        other = KernelSpec(name="k2", flops=2e9, traffic={DRAM: 1e9})
        obs = runner.execute_replicates(other, "intensity", 1)
        assert len(obs) == 1

    def test_non_fault_errors_propagate(self):
        runner = BenchmarkRunner(
            platform("gtx-titan"),
            seed=1,
            faults=FaultPlan(seed=1, sample_dropout=0.01),
        )
        with pytest.raises(ValueError):
            runner.execute_replicates(kernel(), "intensity", 0)

    def test_retry_backoff_sleeps(self, monkeypatch):
        naps = []
        monkeypatch.setattr(time, "sleep", naps.append)
        runner = BenchmarkRunner(
            platform("gtx-titan"),
            seed=1,
            faults=FaultPlan(seed=1, run_failure_rate=1.0),
            max_retries=2,
            retry_backoff=0.1,
        )
        runner.execute_resilient(kernel(), "intensity")
        assert naps == [0.1, 0.2]  # exponential, per retry.

    def test_injected_failure_is_named(self):
        runner = BenchmarkRunner(
            platform("gtx-titan"),
            seed=1,
            faults=FaultPlan(seed=1, run_failure_rate=1.0),
        )
        with pytest.raises(InjectedRunFailureError) as err:
            runner.execute(kernel(), "intensity")
        assert err.value.run == "intensity/k#r0"


class TestFaultyCampaignCompletes:
    def test_acceptance_scenario(self):
        """10% run failures + 5% dropout: the campaign must complete,
        quarantine what keeps failing, and account for every attempt."""
        plan = FaultPlan(seed=99, run_failure_rate=0.10, sample_dropout=0.05)
        runner = CampaignRunner(
            ("gtx-titan", "nuc-gpu"),
            seed=2014,
            max_workers=2,
            faults=plan,
            max_retries=2,
            **QUICK,
        )
        fits = runner.run()  # must not raise.
        report = runner.report
        assert report.ok
        assert report.runs_failed > 0  # the plan actually fired.
        assert report.samples_dropped > 0
        assert_accounting(
            report,
            n_accepted=report.n_runs,
            quarantined=report.quarantined_cells,
        )
        for pid in fits:
            # Degraded but usable: the fit still recovers tau_flop.
            fit = fits[pid]
            dev = abs(
                fit.capped.params.tau_flop - fit.truth.tau_flop
            ) / fit.truth.tau_flop
            assert dev < 0.25

    def test_heavy_failures_quarantine_cells_and_fit_degrades(self):
        plan = FaultPlan(seed=5, run_failure_rate=0.6)
        runner = BenchmarkRunner(
            platform("gtx-titan"), seed=3, faults=plan, max_retries=1
        )
        campaign = run_campaign(
            platform("gtx-titan"),
            runner=runner,
            replicates=1,
            include_double=False,
            include_cache=False,
            include_chase=False,
        )
        assert len(campaign.quarantined) > 0
        assert campaign.n_runs > 0  # survivors made it through.
        assert_accounting(
            runner, n_accepted=campaign.n_runs, quarantined=runner.quarantined
        )
        fitted = fit_campaign(campaign)  # degrades gracefully.
        assert fitted.capped.params.tau_flop > 0


# ---------------------------------------------------------------------------
# Shard-level isolation.  The shard functions must live at module level
# so the process pool can pickle them.
# ---------------------------------------------------------------------------


def crashing_shard(spec):
    if spec.platform_id == "nuc-gpu":
        raise RuntimeError("simulated worker crash")
    return run_shard(spec)


def sleeping_shard(spec):
    time.sleep(1.5)
    return run_shard(spec)


def quick_runner(shard_fn, **kwargs):
    return CampaignRunner(
        ("gtx-titan", "nuc-gpu"), seed=2014, shard_fn=shard_fn, **QUICK, **kwargs
    )


class TestShardIsolation:
    @pytest.mark.parametrize("max_workers", [1, 2])
    def test_crashing_shard_is_contained(self, max_workers):
        runner = quick_runner(crashing_shard, max_workers=max_workers)
        fits = runner.run()
        report = runner.report
        assert set(fits) == {"gtx-titan"}  # the crash took one platform.
        assert not report.ok
        by_pid = {s.platform_id: s for s in report.shards}
        assert by_pid["gtx-titan"].status == "ok"
        assert by_pid["nuc-gpu"].status == "failed"
        assert "RuntimeError" in by_pid["nuc-gpu"].error
        assert "nuc-gpu" in report.describe_losses()
        # The report still covers every requested platform, in order.
        assert [s.platform_id for s in report.shards] == [
            "gtx-titan", "nuc-gpu",
        ]

    def test_pool_deadline_times_out_stragglers(self):
        runner = quick_runner(
            sleeping_shard, max_workers=2, shard_timeout=0.3
        )
        started = time.perf_counter()
        fits = runner.run()
        elapsed = time.perf_counter() - started
        assert fits == {}
        assert elapsed < 1.4  # did not wait out the 1.5s sleepers.
        assert all(s.status == "timeout" for s in runner.report.shards)
        assert "deadline" in runner.report.shards[0].error

    def test_deadline_stragglers_do_not_block_interpreter_exit(
        self, tmp_path
    ):
        # Regression: shutdown(wait=False) leaves hung workers for the
        # executor's atexit join, so without terminating them run()
        # returns on time but the *interpreter* hangs until the shard
        # finishes (30s here).
        script = tmp_path / "hang.py"
        script.write_text(textwrap.dedent("""\
            import time
            from repro.microbench.campaign import CampaignRunner

            def hung_shard(spec):
                time.sleep(30.0)

            if __name__ == "__main__":
                CampaignRunner(
                    ("gtx-titan", "nuc-gpu"),
                    seed=2014,
                    shard_fn=hung_shard,
                    max_workers=2,
                    shard_timeout=0.5,
                ).run()
        """))
        started = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, str(script)], capture_output=True, timeout=25
        )
        assert proc.returncode == 0, proc.stderr.decode()
        assert time.perf_counter() - started < 15.0

    def test_inline_deadline_skips_unstarted_shards(self):
        runner = quick_runner(
            sleeping_shard, max_workers=1, shard_timeout=0.5
        )
        fits = runner.run()
        by_pid = {s.platform_id: s for s in runner.report.shards}
        # The first shard ran past the deadline inline (uninterruptible)
        # and completed; the second was never started.
        assert by_pid["gtx-titan"].status == "ok"
        assert by_pid["nuc-gpu"].status == "timeout"
        assert set(fits) == {"gtx-titan"}

    def test_shard_timeout_validation(self):
        with pytest.raises(ValueError):
            quick_runner(run_shard, shard_timeout=0.0)
