"""Unit tests for the fault-injection subsystem itself."""

import numpy as np
import pytest

from repro.faults import (
    EmptyChannelError,
    FaultInjector,
    FaultPlan,
)
from repro.machine.power import PowerTrace
from repro.measurement.energy import MeasuredRun
from repro.measurement.powermon import ChannelReading, Measurement, PowerMon
from repro.microbench.runner import validate_measured_run
from repro.faults.errors import CorruptObservationError


def channel_arrays(n: int = 256, rate: float = 1024.0):
    times = (np.arange(n) + 0.5) / rate
    power = 50.0 + 10.0 * np.sin(2 * np.pi * times)
    return times, power


class TestFaultPlan:
    def test_defaults_are_zero(self):
        assert FaultPlan().is_zero
        assert FaultPlan.zero(seed=9).is_zero
        assert FaultPlan.zero(seed=9).seed == 9

    def test_active_fields_break_is_zero(self):
        assert not FaultPlan(sample_dropout=0.1).is_zero
        assert not FaultPlan(timestamp_jitter=1e-4).is_zero
        assert not FaultPlan(saturation_power=100.0).is_zero
        assert not FaultPlan(run_failure_rate=0.5).is_zero

    def test_desync_needs_both_knobs(self):
        # A skew magnitude with zero probability (or vice versa) can
        # never fire, so the plan is still the identity.
        assert FaultPlan(channel_desync=1e-3).is_zero
        assert FaultPlan(desync_probability=0.5).is_zero
        assert not FaultPlan(channel_desync=1e-3, desync_probability=0.5).is_zero

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(sample_dropout=1.5),
            dict(sample_dropout=-0.1),
            dict(nan_rate=2.0),
            dict(truncation_rate=-1.0),
            dict(run_failure_rate=1.01),
            dict(timestamp_jitter=-1e-6),
            dict(channel_desync=-1e-6),
            dict(saturation_power=0.0),
            dict(truncation_fraction=0.0),
            dict(truncation_fraction=1.0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_with_seed(self):
        plan = FaultPlan(sample_dropout=0.2, seed=1)
        reseeded = plan.with_seed(42)
        assert reseeded.seed == 42
        assert reseeded.sample_dropout == 0.2

    def test_parse_aliases_and_seed(self):
        plan = FaultPlan.parse(
            "dropout=0.05, jitter=1e-4, run_failure=0.1, seed=7"
        )
        assert plan.sample_dropout == 0.05
        assert plan.timestamp_jitter == 1e-4
        assert plan.run_failure_rate == 0.1
        assert plan.seed == 7

    def test_parse_full_field_names(self):
        plan = FaultPlan.parse("sample_dropout=0.25,saturation=120")
        assert plan.sample_dropout == 0.25
        assert plan.saturation_power == 120.0

    def test_parse_empty_is_zero(self):
        assert FaultPlan.parse("") == FaultPlan.zero()

    def test_parse_rejects_unknown_and_malformed(self):
        with pytest.raises(ValueError, match="unknown fault"):
            FaultPlan.parse("dorpout=0.1")
        with pytest.raises(ValueError, match="key=value"):
            FaultPlan.parse("dropout")

    def test_describe(self):
        assert FaultPlan().describe() == "no faults"
        assert "sample_dropout=0.1" in FaultPlan(sample_dropout=0.1).describe()


class TestInjectorZeroIsFree:
    def test_zero_plan_returns_identical_arrays(self):
        times, power = channel_arrays()
        injector = FaultInjector(FaultPlan.zero())
        assert not injector.active
        out_t, out_p = injector.corrupt_channel("12v", times, power)
        assert out_t is times
        assert out_p is power

    def test_zero_plan_trace_and_run_untouched(self):
        trace = PowerTrace(edges=np.array([0.0, 1.0]), values=np.array([50.0]))
        injector = FaultInjector(FaultPlan.zero())
        out, truncated = injector.truncate_trace(trace)
        assert out is trace
        assert not truncated
        assert not injector.fail_run("any")
        assert injector.counters.samples_corrupted == 0


class TestInjectorDeterminism:
    PLAN = FaultPlan(
        seed=11,
        sample_dropout=0.1,
        timestamp_jitter=1e-4,
        nan_rate=0.05,
        saturation_power=55.0,
        channel_desync=1e-3,
        desync_probability=0.5,
    )

    def test_same_seed_same_corruption(self):
        times, power = channel_arrays()
        a = FaultInjector(self.PLAN)
        b = FaultInjector(self.PLAN)
        ta, pa = a.corrupt_channel("12v", times, power)
        tb, pb = b.corrupt_channel("12v", times, power)
        np.testing.assert_array_equal(ta, tb)
        np.testing.assert_array_equal(pa, pb)  # NaNs compare positionally.
        assert a.counters.as_dict() == b.counters.as_dict()

    def test_key_changes_the_stream(self):
        times, power = channel_arrays()
        a, _ = FaultInjector(self.PLAN).corrupt_channel("12v", times, power)
        b, _ = FaultInjector(self.PLAN, key=3).corrupt_channel(
            "12v", times, power
        )
        assert len(a) != len(b) or not np.array_equal(a, b)

    def test_inputs_never_mutated(self):
        times, power = channel_arrays()
        t0, p0 = times.copy(), power.copy()
        FaultInjector(self.PLAN).corrupt_channel("12v", times, power)
        np.testing.assert_array_equal(times, t0)
        np.testing.assert_array_equal(power, p0)


class TestFaultModels:
    def test_dropout_removes_samples_and_counts(self):
        times, power = channel_arrays()
        injector = FaultInjector(FaultPlan(seed=1, sample_dropout=0.5))
        out_t, out_p = injector.corrupt_channel("12v", times, power)
        assert 0 < len(out_t) < len(times)
        assert len(out_t) == len(out_p)
        assert injector.counters.samples_dropped == len(times) - len(out_t)

    def test_total_dropout_empties_the_channel(self):
        times, power = channel_arrays()
        injector = FaultInjector(FaultPlan(seed=1, sample_dropout=1.0))
        out_t, out_p = injector.corrupt_channel("12v", times, power)
        assert len(out_t) == 0 and len(out_p) == 0
        assert injector.counters.channels_emptied == 1

    def test_jitter_keeps_times_monotone(self):
        times, power = channel_arrays()
        injector = FaultInjector(FaultPlan(seed=2, timestamp_jitter=1e-4))
        out_t, _ = injector.corrupt_channel("12v", times, power)
        assert not np.array_equal(out_t, times)
        assert np.all(np.diff(out_t) >= 0)

    def test_nan_injection_counts_and_copies(self):
        times, power = channel_arrays(n=2048)
        injector = FaultInjector(FaultPlan(seed=3, nan_rate=0.1))
        _, out_p = injector.corrupt_channel("12v", times, power)
        n_nan = int(np.count_nonzero(np.isnan(out_p)))
        assert n_nan > 0
        assert injector.counters.samples_nan == n_nan
        assert not np.any(np.isnan(power))

    def test_saturation_clips_at_full_scale(self):
        times, power = channel_arrays()
        injector = FaultInjector(FaultPlan(seed=4, saturation_power=52.0))
        _, out_p = injector.corrupt_channel("12v", times, power)
        assert np.max(out_p) <= 52.0
        expected = int(np.count_nonzero(power > 52.0))
        assert injector.counters.samples_saturated == expected

    def test_desync_skew_is_persistent_per_rail(self):
        times, power = channel_arrays()
        injector = FaultInjector(
            FaultPlan(seed=5, channel_desync=1e-3, desync_probability=1.0)
        )
        t1, _ = injector.corrupt_channel("12v", times, power)
        t2, _ = injector.corrupt_channel("12v", times, power)
        np.testing.assert_array_equal(t1, t2)
        skew = t1[0] - times[0]
        assert skew != 0.0 and abs(skew) <= 1e-3
        assert injector.counters.channels_desynced == 1

    def test_truncation(self):
        trace = PowerTrace(
            edges=np.array([0.0, 1.0, 2.0]), values=np.array([10.0, 20.0])
        )
        injector = FaultInjector(
            FaultPlan(seed=6, truncation_rate=1.0, truncation_fraction=0.25)
        )
        out, truncated = injector.truncate_trace(trace)
        assert truncated
        assert out.duration == pytest.approx(0.5)
        assert injector.counters.sessions_truncated == 1

    def test_fail_run(self):
        injector = FaultInjector(FaultPlan(seed=7, run_failure_rate=1.0))
        assert injector.fail_run("intensity/k#r0")
        assert injector.counters.runs_failed == 1


class TestTraceTruncation:
    def test_prefix_clip(self):
        trace = PowerTrace(
            edges=np.array([0.0, 1.0, 2.0, 3.0]),
            values=np.array([1.0, 2.0, 3.0]),
        )
        cut = trace.truncated(1.5)
        np.testing.assert_allclose(cut.edges, [0.0, 1.0, 1.5])
        np.testing.assert_allclose(cut.values, [1.0, 2.0])

    @pytest.mark.parametrize("duration", [0.0, -1.0, 3.0, 4.0])
    def test_validation(self, duration):
        trace = PowerTrace(
            edges=np.array([0.0, 1.0, 2.0, 3.0]),
            values=np.array([1.0, 2.0, 3.0]),
        )
        with pytest.raises(ValueError):
            trace.truncated(duration)


class TestEmptyChannel:
    def test_channel_reading_names_the_rail(self):
        with pytest.raises(EmptyChannelError) as err:
            ChannelReading(rail="atx", times=np.array([]), power=np.array([]))
        assert err.value.rail == "atx"
        # Backward compatible with the old generic ValueError.
        assert isinstance(err.value, ValueError)

    def test_powermon_total_dropout_raises_named_error(self):
        trace = PowerTrace(edges=np.array([0.0, 0.5]), values=np.array([40.0]))
        mon = PowerMon(faults=FaultPlan(seed=1, sample_dropout=1.0))
        with pytest.raises(EmptyChannelError):
            mon.measure({"12v": trace})


class TestValidateMeasuredRun:
    @staticmethod
    def measured(energy: float, avg_power: float = 50.0) -> MeasuredRun:
        reading = ChannelReading(
            rail="12v", times=np.array([0.5]), power=np.array([avg_power])
        )
        return MeasuredRun(
            wall_time=1.0,
            energy=energy,
            avg_power=avg_power,
            measurement=Measurement(channels=(reading,), duration=1.0),
        )

    def test_accepts_clean_run(self):
        validate_measured_run(self.measured(energy=50.0), "bench/k#r0")

    @pytest.mark.parametrize("energy", [float("nan"), float("inf"), 0.0, -1.0])
    def test_rejects_bad_energy(self, energy):
        with pytest.raises(CorruptObservationError) as err:
            validate_measured_run(self.measured(energy=energy), "bench/k#r0")
        assert err.value.run == "bench/k#r0"
        assert "energy" in err.value.reason
