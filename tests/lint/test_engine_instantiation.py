"""Regression: the engine instantiates each rule exactly once per file.

``lint_context`` previously built one instance to check ``applies()``
and a second to walk with, so rules doing work in ``__init__`` paid it
twice and any start-state captured by the first instance was thrown
away.
"""

from __future__ import annotations

from repro.lint.context import ModuleContext
from repro.lint.engine import lint_context
from repro.lint.rules.base import Rule


class CountingRule(Rule):
    code = "TST901"
    name = "instantiation-counter"
    description = "test-only"
    instances = 0

    def __init__(self) -> None:
        type(self).instances += 1


class ScopedOutRule(Rule):
    code = "TST902"
    name = "scoped-out-counter"
    description = "test-only"
    scope = ("some.other.package",)
    instances = 0

    def __init__(self) -> None:
        type(self).instances += 1


def test_applicable_rule_instantiated_once():
    CountingRule.instances = 0
    ctx = ModuleContext.from_source("x = 1\n", path="t.py")
    lint_context(ctx, [CountingRule])
    assert CountingRule.instances == 1


def test_scoped_out_rule_instantiated_once():
    ScopedOutRule.instances = 0
    ctx = ModuleContext.from_source("x = 1\n", path="t.py", module="t")
    lint_context(ctx, [ScopedOutRule])
    assert ScopedOutRule.instances == 1
