"""Inline ``# archlint: disable=...`` suppression semantics."""

from __future__ import annotations

import textwrap

from repro.lint import ModuleContext, lint_source

MODULE = "repro.machine.fake"


def lint(source: str, codes=None):
    return lint_source(textwrap.dedent(source), module=MODULE, codes=codes)


def test_same_line_suppression():
    assert (
        lint(
            """
            def check(sigma):
                return sigma == 0.0  # archlint: disable=ARCH004
            """,
            codes=["ARCH004"],
        )
        == []
    )


def test_comment_only_line_suppresses_the_next_line():
    # The justification-above-code pattern used throughout src/.
    assert (
        lint(
            """
            def check(sigma):
                # Exact sentinel: disabled noise must consume no draws.
                # archlint: disable=ARCH004
                return sigma == 0.0
            """,
            codes=["ARCH004"],
        )
        == []
    )


def test_suppression_is_code_specific():
    findings = lint(
        """
        import random

        def check(sigma):
            x = random.random()  # archlint: disable=ARCH004
            return x == 0.0  # archlint: disable=ARCH001
        """,
        codes=["ARCH001", "ARCH004"],
    )
    # Each line suppressed the *wrong* code, so both findings survive.
    assert sorted(f.code for f in findings) == ["ARCH001", "ARCH004"]


def test_comma_separated_codes():
    assert (
        lint(
            """
            import random

            def check():
                return random.random() == 0.5  # archlint: disable=ARCH001,ARCH004
            """,
            codes=["ARCH001", "ARCH004"],
        )
        == []
    )


def test_disable_all_wildcard():
    assert (
        lint(
            """
            import random

            def check():
                return random.random() == 0.5  # archlint: disable=all
            """
        )
        == []
    )


def test_file_level_suppression():
    assert (
        lint(
            """
            # archlint: disable-file=ARCH004

            def check(a, b, c):
                return a == 0.0 or b == 1.0 or c == 2.0
            """,
            codes=["ARCH004"],
        )
        == []
    )


def test_unsuppressed_finding_still_reported():
    findings = lint(
        """
        def check(a, b):
            x = a == 0.0  # archlint: disable=ARCH004
            return x or b == 1.0
        """,
        codes=["ARCH004"],
    )
    assert len(findings) == 1
    assert findings[0].line == 4


def test_is_suppressed_api():
    ctx = ModuleContext.from_source(
        "x = 1  # archlint: disable=ARCH001\n", path="f.py", module="m"
    )
    assert ctx.is_suppressed("ARCH001", 1)
    assert not ctx.is_suppressed("ARCH002", 1)
    assert not ctx.is_suppressed("ARCH001", 2)
