"""``archline lint`` exit-code contract: 0 clean, 1 findings, 2 usage."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.cli import main as archline_main
from repro.lint.cli import main as lint_main

CLEAN = "def double(x):\n    return 2 * x\n"

DIRTY = textwrap.dedent(
    """
    def run(step):
        try:
            step()
        except:
            pass
    """
)


@pytest.fixture()
def tree(tmp_path):
    """A tiny package with one clean and one dirty module."""
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "clean.py").write_text(CLEAN)
    (pkg / "dirty.py").write_text(DIRTY)
    return pkg


def test_exit_zero_on_clean_file(tmp_path, capsys):
    target = tmp_path / "clean.py"
    target.write_text(CLEAN)
    assert lint_main([str(target)]) == 0
    assert "archlint: clean" in capsys.readouterr().out


def test_exit_one_on_findings(tree, capsys):
    assert lint_main([str(tree)]) == 1
    out = capsys.readouterr().out
    assert "ARCH003" in out
    assert "dirty.py" in out


def test_exit_two_on_missing_path(tmp_path, capsys):
    assert lint_main([str(tmp_path / "nope")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_exit_two_on_unknown_rule_code(tree, capsys):
    assert lint_main([str(tree), "--select", "ARCH999"]) == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_exit_two_on_malformed_baseline(tree, tmp_path, capsys):
    bad = tmp_path / "baseline.json"
    bad.write_text("{broken")
    assert lint_main([str(tree), "--baseline", str(bad)]) == 2
    assert "baseline" in capsys.readouterr().err


def test_select_narrows_rules(tree):
    # The only violation is ARCH003; selecting a different rule is clean.
    assert lint_main([str(tree), "--select", "ARCH004"]) == 0


def test_update_baseline_then_clean(tree, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert lint_main([str(tree), "--update-baseline", "--baseline", str(baseline)]) == 0
    capsys.readouterr()
    # With the violations baselined, the same tree now lints clean.
    assert lint_main([str(tree), "--baseline", str(baseline)]) == 0
    payload = json.loads(baseline.read_text())
    assert payload["findings"], "baseline should have captured the finding"


def test_json_format_flag(tree, capsys):
    assert lint_main([str(tree), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["total"] >= 1


def test_github_format_flag(tree, capsys):
    assert lint_main([str(tree), "--format", "github"]) == 1
    assert "::error file=" in capsys.readouterr().out


def test_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("ARCH001", "ARCH002", "ARCH003", "ARCH004", "ARCH005", "ARCH006"):
        assert code in out


def test_syntax_error_reported_as_finding(tmp_path, capsys):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    assert lint_main([str(bad)]) == 1
    assert "ARCH000" in capsys.readouterr().out


def test_archline_lint_subcommand(tree, capsys):
    # The rig CLI front door dispatches to the same implementation.
    assert archline_main(["lint", str(tree)]) == 1
    assert "ARCH003" in capsys.readouterr().out
    assert archline_main(["lint", str(tree), "--select", "ARCH004"]) == 0
