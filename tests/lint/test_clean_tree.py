"""The shipped source tree must lint clean with an empty baseline.

This is the acceptance criterion of the lint PR frozen as a test: every
real violation was either fixed or carries an inline justified
suppression, so ``archline lint src/`` reports nothing.  If a future
change introduces a violation, this test fails alongside CI.
"""

from __future__ import annotations

import pathlib

from repro.lint import lint_paths

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def test_src_tree_is_archlint_clean():
    findings = lint_paths([REPO_ROOT / "src"])
    assert findings == [], "\n".join(f.render_text() for f in findings)
