"""The shipped source tree must lint clean with an empty baseline.

This is the acceptance criterion of the lint PR frozen as a test: every
real violation was either fixed or carries an inline justified
suppression, so ``archline lint src/`` reports nothing.  If a future
change introduces a violation, this test fails alongside CI.
"""

from __future__ import annotations

import pathlib

from repro.lint import lint_paths
from repro.lint.project import lint_project

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def test_src_tree_is_archlint_clean():
    findings = lint_paths([REPO_ROOT / "src"])
    assert findings == [], "\n".join(f.render_text() for f in findings)


def test_src_tree_is_archlint_clean_in_project_mode():
    """The whole-program rules (ARCH008-011) also hold on the shipped
    tree: every real cross-module violation was fixed or carries an
    inline justified suppression."""
    findings, stats = lint_project([str(REPO_ROOT / "src")])
    assert findings == [], "\n".join(f.render_text() for f in findings)
    assert stats.files > 100  # the whole tree was actually analyzed.


def test_tests_and_benchmarks_pass_relaxed_subset():
    from repro.lint.cli import RELAXED_TEST_CODES

    findings = lint_paths(
        [REPO_ROOT / "tests", REPO_ROOT / "benchmarks"],
        list(RELAXED_TEST_CODES),
    )
    assert findings == [], "\n".join(f.render_text() for f in findings)
