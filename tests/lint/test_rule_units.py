"""ARCH005: positive and negative fixtures for unit-suffix discipline."""

from __future__ import annotations

import textwrap

from repro.lint import lint_source


def lint(source: str, module: str = "repro.anywhere.fake"):
    return lint_source(textwrap.dedent(source), module=module, codes=["ARCH005"])


def test_flags_adding_joules_to_seconds():
    findings = lint(
        """
        def total(run_joules, run_seconds):
            return run_joules + run_seconds
        """
    )
    assert [f.code for f in findings] == ["ARCH005"]
    assert "joules" in findings[0].message and "seconds" in findings[0].message


def test_flags_subtraction_and_comparison():
    findings = lint(
        """
        def diff(total_flops, total_bytes, cap_watts, used_joules):
            if cap_watts < used_joules:
                return total_flops - total_bytes
            return 0.0
        """
    )
    assert len(findings) == 2


def test_flags_augmented_assignment():
    findings = lint(
        """
        def accumulate(total_joules, extra_seconds):
            total_joules += extra_seconds
            return total_joules
        """
    )
    assert [f.code for f in findings] == ["ARCH005"]


def test_same_unit_arithmetic_is_fine():
    assert (
        lint(
            """
            def total(a_joules, b_joules):
                return a_joules + b_joules
            """
        )
        == []
    )


def test_multiplication_and_division_change_units_legally():
    # W = J/s and E = P*t are the whole point of the model; only +,-
    # and comparisons require matching units.
    assert (
        lint(
            """
            def power(run_joules, run_seconds, cap_watts):
                return run_joules / run_seconds + cap_watts
            """
        )
        == []
    )


def test_attribute_suffixes_are_checked_too():
    findings = lint(
        """
        def check(obs):
            return obs.energy_joules + obs.elapsed_seconds
        """
    )
    assert [f.code for f in findings] == ["ARCH005"]


def test_conversion_through_a_call_silences_the_rule():
    # A call result carries no suffix, so routing through repro.units
    # converters is the sanctioned way to mix quantities.
    assert (
        lint(
            """
            def total(run_joules, run_seconds, pi1_watts):
                return run_joules + energy_from(pi1_watts, run_seconds)
            """
        )
        == []
    )


def test_unsuffixed_names_are_fine():
    assert lint("def f(a, b):\n    return a + b\n") == []
