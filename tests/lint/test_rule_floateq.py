"""ARCH004: positive and negative fixtures for float-literal equality."""

from __future__ import annotations

import textwrap

from repro.lint import lint_source

MODULE = "repro.machine.fake"


def lint(source: str, module: str = MODULE):
    return lint_source(textwrap.dedent(source), module=module, codes=["ARCH004"])


def test_flags_equality_against_float_literal():
    findings = lint(
        """
        def check(sigma):
            return sigma == 0.0
        """
    )
    assert [f.code for f in findings] == ["ARCH004"]
    assert "isclose" in findings[0].message


def test_flags_inequality_and_reversed_operands():
    findings = lint(
        """
        def check(a, b):
            return a != 1.5 or 2.5 == b
        """
    )
    assert [f.code for f in findings] == ["ARCH004", "ARCH004"]


def test_flags_negative_float_literal():
    assert len(lint("ok = x == -1.0\n")) == 1


def test_integer_literals_are_fine():
    assert lint("def check(n):\n    return n == 0\n") == []


def test_ordered_comparisons_are_fine():
    assert lint("def check(x):\n    return x > 0.0 and x <= 1.0\n") == []


def test_variable_to_variable_comparison_is_fine():
    assert lint("def check(a, b):\n    return a == b\n") == []


def test_rule_scoped_to_stats_and_machine():
    source = "flag = x == 0.5\n"
    assert lint(source, module="repro.telemetry.fake") == []
    assert len(lint(source, module="repro.stats.fake")) == 1
    assert len(lint(source, module="repro.machine.fake")) == 1
