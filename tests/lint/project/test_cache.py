"""The content-addressed summary cache: warm replay, invalidation."""

from __future__ import annotations

import json

from repro.lint.project import lint_project
from repro.lint.project.cache import ANALYSIS_VERSION, SummaryCache

from .conftest import build_tree

TREE = {
    "repro/microbench/campaign.py": """
        from repro.store.store import save_entry

        def run_shard(spec):
            return save_entry(spec)
        """,
    "repro/store/store.py": """
        import time

        def save_entry(spec):
            return {"created": time.time(), "spec": spec}
        """,
}


def run(tmp_path, cache_dir, **kwargs):
    return lint_project(
        [str(tmp_path / "repro")], cache_dir=cache_dir, **kwargs
    )


class TestCache:
    def test_warm_run_reanalyzes_nothing(self, tmp_path):
        build_tree(tmp_path, TREE)
        cache = tmp_path / "cache"
        cold, cold_stats = run(tmp_path, cache)
        warm, warm_stats = run(tmp_path, cache)
        assert cold_stats.analyzed == cold_stats.files > 0
        assert warm_stats.analyzed == 0
        assert warm_stats.cache_hits == warm_stats.files
        assert warm_stats.hit_rate == 1.0

    def test_warm_findings_are_identical(self, tmp_path):
        build_tree(tmp_path, TREE)
        cache = tmp_path / "cache"
        cold, _ = run(tmp_path, cache)
        warm, _ = run(tmp_path, cache)
        assert [f.to_dict() for f in cold] == [f.to_dict() for f in warm]
        # Fingerprints (anchor-based for project findings) replay too.
        assert [f.fingerprint() for f in cold] == [
            f.fingerprint() for f in warm
        ]

    def test_content_change_invalidates_one_file(self, tmp_path):
        build_tree(tmp_path, TREE)
        cache = tmp_path / "cache"
        run(tmp_path, cache)
        store = tmp_path / "repro/store/store.py"
        store.write_text(store.read_text() + "\nEXTRA = 1\n")
        _, stats = run(tmp_path, cache)
        assert stats.analyzed == 1
        assert stats.cache_hits == stats.files - 1

    def test_touch_without_change_still_hits(self, tmp_path):
        # Content-addressed, not mtime-addressed.
        build_tree(tmp_path, TREE)
        cache = tmp_path / "cache"
        run(tmp_path, cache)
        store = tmp_path / "repro/store/store.py"
        store.write_text(store.read_text())
        _, stats = run(tmp_path, cache)
        assert stats.analyzed == 0

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        build_tree(tmp_path, TREE)
        cache = tmp_path / "cache"
        run(tmp_path, cache)
        for entry in (cache).glob("*.json"):
            entry.write_text("{not json")
        findings, stats = run(tmp_path, cache)
        assert stats.analyzed == stats.files
        assert [f.code for f in findings] == ["ARCH008"]

    def test_version_skew_reads_as_miss(self, tmp_path):
        build_tree(tmp_path, TREE)
        cache = tmp_path / "cache"
        run(tmp_path, cache)
        for entry in cache.glob("*.json"):
            payload = json.loads(entry.read_text())
            payload["version"] = ANALYSIS_VERSION + 1
            entry.write_text(json.dumps(payload))
        _, stats = run(tmp_path, cache)
        assert stats.analyzed == stats.files

    def test_cache_object_counts_hits_and_misses(self, tmp_path):
        cache = SummaryCache(tmp_path / "c")
        assert cache.load("a.py", b"x = 1\n") is None
        cache.store("a.py", b"x = 1\n", {"findings": []})
        assert cache.load("a.py", b"x = 1\n") == {"findings": []}
        assert cache.load("a.py", b"x = 2\n") is None  # content moved.
        assert cache.hits == 1
        assert cache.misses == 2

    def test_parallel_jobs_match_serial(self, tmp_path):
        build_tree(tmp_path, TREE)
        serial, _ = lint_project([str(tmp_path / "repro")], jobs=1)
        parallel, _ = lint_project([str(tmp_path / "repro")], jobs=2)
        assert [f.to_dict() for f in serial] == [
            f.to_dict() for f in parallel
        ]
