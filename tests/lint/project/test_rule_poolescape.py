"""ARCH011: transitive picklability of the shard pool payload."""

from __future__ import annotations


SPEC = """
    from dataclasses import dataclass
    from repro.core.fit import Fit

    @dataclass(frozen=True)
    class ShardSpec:
        fit: Fit
        n: int
    """


def files_with_fit(fit_source: str) -> dict[str, str]:
    return {
        "repro/microbench/campaign.py": SPEC,
        "repro/core/fit.py": fit_source,
    }


class TestPoolEscape:
    def test_plain_mutable_class_is_flagged(self, project):
        files = files_with_fit(
            """
            class Fit:
                def __init__(self, params):
                    self.params = params
            """
        )
        findings, _ = project(files, codes=["ARCH011"])
        assert [f.code for f in findings] == ["ARCH011"]
        (finding,) = findings
        assert finding.path.endswith("repro/core/fit.py")
        assert "ShardSpec -> Fit" in finding.message

    def test_frozen_dataclass_is_clean(self, project):
        files = files_with_fit(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Fit:
                params: tuple
            """
        )
        findings, _ = project(files, codes=["ARCH011"])
        assert findings == []

    def test_unfrozen_dataclass_is_flagged(self, project):
        files = files_with_fit(
            """
            from dataclasses import dataclass

            @dataclass
            class Fit:
                params: tuple
            """
        )
        findings, _ = project(files, codes=["ARCH011"])
        assert [f.code for f in findings] == ["ARCH011"]
        assert "frozen=True" in findings[0].message

    def test_pickle_protocol_excuses_plain_class(self, project):
        files = files_with_fit(
            """
            class Fit:
                def __init__(self, params):
                    self.params = params

                def __getstate__(self):
                    return self.params

                def __setstate__(self, state):
                    self.params = state
            """
        )
        findings, _ = project(files, codes=["ARCH011"])
        assert findings == []

    def test_enum_and_exception_classes_are_inert(self, project):
        files = {
            "repro/microbench/campaign.py": """
                from dataclasses import dataclass
                from repro.core.fit import Mode, FitError

                @dataclass(frozen=True)
                class ShardSpec:
                    mode: Mode
                    error: FitError
                """,
            "repro/core/fit.py": """
                import enum

                class Mode(enum.Enum):
                    FAST = "fast"

                class FitError(ValueError):
                    pass
                """,
        }
        findings, _ = project(files, codes=["ARCH011"])
        assert findings == []

    def test_unpicklable_field_annotation_is_flagged(self, project):
        files = files_with_fit(
            """
            from dataclasses import dataclass
            from threading import Lock

            @dataclass(frozen=True)
            class Fit:
                guard: Lock
            """
        )
        findings, _ = project(files, codes=["ARCH011"])
        assert [f.code for f in findings] == ["ARCH011"]
        assert "Lock" in findings[0].message

    def test_two_hop_reachability(self, project):
        files = {
            "repro/microbench/campaign.py": SPEC,
            "repro/core/fit.py": """
                from dataclasses import dataclass
                from repro.core.theta import Theta

                @dataclass(frozen=True)
                class Fit:
                    theta: Theta
                """,
            "repro/core/theta.py": """
                class Theta:
                    def __init__(self):
                        self.values = []
                """,
        }
        findings, _ = project(files, codes=["ARCH011"])
        assert [f.code for f in findings] == ["ARCH011"]
        assert findings[0].path.endswith("repro/core/theta.py")
        assert "ShardSpec -> Fit -> Theta" in findings[0].message

    def test_unreachable_mutable_class_is_clean(self, project):
        files = {
            "repro/microbench/campaign.py": """
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class ShardSpec:
                    n: int
                """,
            "repro/core/fit.py": """
                class Fit:
                    def __init__(self):
                        self.x = 1
                """,
        }
        findings, _ = project(files, codes=["ARCH011"])
        assert findings == []

    def test_suppression_at_reached_class(self, project):
        files = files_with_fit(
            """
            # archlint: disable=ARCH011
            class Fit:
                def __init__(self, params):
                    self.params = params
            """
        )
        findings, _ = project(files, codes=["ARCH011"])
        assert findings == []
