"""Cross-module fingerprints: stability under edits, baseline flow.

The satellite acceptance: a project finding's fingerprint survives
unrelated-line insertions in *both* files and reordering of
definitions, and inline suppression on either endpoint retires it --
so the shipped (empty) baseline format works unchanged for
ARCH008-ARCH011.
"""

from __future__ import annotations

from repro.lint.baseline import assign_fingerprints, filter_baselined
from repro.lint.findings import Finding
from repro.lint.project import lint_project

from .conftest import build_tree

TREE = {
    "repro/microbench/campaign.py": """
        from repro.store.store import save_entry

        def run_shard(spec):
            return save_entry(spec)
        """,
    "repro/store/store.py": """
        import time

        def save_entry(spec):
            return {"created": time.time(), "spec": spec}
        """,
}


def fingerprints(tmp_path):
    findings, _ = lint_project([str(tmp_path / "repro")], ["ARCH008"])
    return {f.fingerprint() for f in findings}


class TestAnchorFingerprints:
    def test_anchor_names_both_endpoints(self, tmp_path):
        build_tree(tmp_path, TREE)
        findings, _ = lint_project([str(tmp_path / "repro")], ["ARCH008"])
        (finding,) = findings
        assert finding.anchor.startswith("ARCH008|")
        assert "run_shard" in finding.anchor
        assert "store.py" in finding.anchor

    def test_survives_line_insertions_in_both_files(self, tmp_path):
        build_tree(tmp_path, TREE)
        before = fingerprints(tmp_path)
        for rel in TREE:
            path = tmp_path / rel
            path.write_text(
                "# comment\n# another\nX = 0\n" + path.read_text()
            )
        assert fingerprints(tmp_path) == before

    def test_survives_definition_reordering(self, tmp_path):
        build_tree(tmp_path, TREE)
        before = fingerprints(tmp_path)
        store = tmp_path / "repro/store/store.py"
        store.write_text(
            "import time\n"
            "\n"
            "def unrelated_helper():\n"
            "    return 41\n"
            "\n"
            "def save_entry(spec):\n"
            '    return {"created": time.time(), "spec": spec}\n'
        )
        assert fingerprints(tmp_path) == before

    def test_distinct_sinks_get_distinct_fingerprints(self, tmp_path):
        files = dict(TREE)
        files["repro/store/store.py"] = """
            import time
            import datetime

            def save_entry(spec):
                a = time.time()
                b = datetime.datetime.now()
                return (a, b, spec)
            """
        build_tree(tmp_path, files)
        prints = fingerprints(tmp_path)
        assert len(prints) == 2

    def test_per_file_findings_unaffected_by_anchor_layer(self):
        finding = Finding(
            path="a.py",
            line=3,
            col=0,
            code="ARCH003",
            message="m",
            source_line="except: pass",
        )
        assert finding.identity() == "except: pass"
        anchored = Finding(
            path="a.py",
            line=3,
            col=0,
            code="ARCH008",
            message="m",
            source_line="except: pass",
            anchor="ARCH008|a.py::f|b.py::g",
        )
        assert anchored.identity() == "ARCH008|a.py::f|b.py::g"
        assert anchored.fingerprint() != finding.fingerprint()

    def test_baseline_round_trip_retires_project_finding(self, tmp_path):
        build_tree(tmp_path, TREE)
        findings, _ = lint_project([str(tmp_path / "repro")], ["ARCH008"])
        baselined = assign_fingerprints(findings)
        fresh, matched = filter_baselined(
            findings, {fingerprint for _, fingerprint in baselined}
        )
        assert fresh == []
        assert matched == len(findings)

    def test_duplicate_anchors_disambiguate_by_index(self):
        a = Finding(
            path="a.py", line=1, col=0, code="ARCH008", message="m",
            anchor="ARCH008|x|y",
        )
        b = Finding(
            path="a.py", line=9, col=0, code="ARCH008", message="m",
            anchor="ARCH008|x|y",
        )
        pairs = assign_fingerprints([a, b])
        assert len({fingerprint for _, fingerprint in pairs}) == 2
