"""Fixture helpers for the whole-program lint tests.

Each test builds a miniature ``repro`` package under ``tmp_path`` using
the *real* module names the project rules key off
(``repro.microbench.campaign.run_shard`` and friends) -- the dotted
module name is inferred from ``__init__.py`` markers on disk exactly as
in a source checkout, so these trees exercise the same resolution
paths as the shipped tree.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint.project import lint_project


def build_tree(root: Path, files: dict[str, str]) -> Path:
    """Materialize ``{relative path: source}`` and add package markers."""
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    for pyfile in root.rglob("*.py"):
        parent = pyfile.parent
        while parent != root:
            marker = parent / "__init__.py"
            if not marker.exists():
                marker.write_text("")
            parent = parent.parent
    return root


@pytest.fixture()
def project(tmp_path):
    """``project(files, codes=None, **kw)`` -> (findings, stats)."""

    def run(files: dict[str, str], codes=None, **kwargs):
        build_tree(tmp_path, files)
        return lint_project([str(tmp_path / "repro")], codes, **kwargs)

    return run
