"""ProjectGraph resolution: re-exports, inheritance, attribute hops."""

from __future__ import annotations

from repro.lint.context import ModuleContext
from repro.lint.project.graph import ProjectGraph
from repro.lint.project.summaries import summarize_module


def graph_of(modules: dict[str, str]) -> ProjectGraph:
    summaries = []
    for module, source in modules.items():
        path = module.replace(".", "/") + ".py"
        ctx = ModuleContext.from_source(source, path=path, module=module)
        summaries.append(summarize_module(ctx))
    return ProjectGraph(summaries)


class TestResolve:
    def test_direct_function(self):
        graph = graph_of({"repro.a": "def f():\n    return 1\n"})
        assert graph.resolve("repro.a.f") == ("func", "repro.a.f")

    def test_package_reexport(self):
        # The re-exporting module must be summarized as a package
        # (__init__.py path) so its relative import absolutizes.
        ctx = ModuleContext.from_source(
            "from .campaign import run_shard\n",
            path="repro/microbench/__init__.py",
            module="repro.microbench",
        )
        ctx2 = ModuleContext.from_source(
            "def run_shard(spec):\n    return spec\n",
            path="repro/microbench/campaign.py",
            module="repro.microbench.campaign",
        )
        graph = ProjectGraph(
            [summarize_module(ctx), summarize_module(ctx2)]
        )
        assert graph.resolve("repro.microbench.run_shard") == (
            "func",
            "repro.microbench.campaign.run_shard",
        )

    def test_method_found_on_base_class(self):
        graph = graph_of(
            {
                "repro.base": (
                    "class Engine:\n"
                    "    def run_batch(self):\n"
                    "        return 0\n"
                ),
                "repro.derived": (
                    "from repro.base import Engine\n"
                    "class TurboEngine(Engine):\n"
                    "    pass\n"
                ),
            }
        )
        assert graph.resolve("repro.derived.TurboEngine.run_batch") == (
            "func",
            "repro.base.Engine.run_batch",
        )

    def test_unknown_reference_is_none(self):
        graph = graph_of({"repro.a": "def f():\n    return 1\n"})
        assert graph.resolve("numpy.linalg.solve") is None


class TestAttributeHop:
    def test_self_attr_method_resolves_through_init(self):
        graph = graph_of(
            {
                "repro.rig": (
                    "class Rig:\n"
                    "    def read(self):\n"
                    "        return 1\n"
                ),
                "repro.runner": (
                    "from repro.rig import Rig\n"
                    "class Runner:\n"
                    "    def __init__(self):\n"
                    "        self.rig = Rig()\n"
                    "    def execute(self):\n"
                    "        return self.rig.read()\n"
                ),
            }
        )
        execute = graph.functions["repro.runner.Runner.execute"]
        (call,) = [c for c in execute.calls if c.callees]
        assert graph.callee_functions(call) == ["repro.rig.Rig.read"]

    def test_constructor_call_expands_to_init(self):
        graph = graph_of(
            {
                "repro.rig": (
                    "class Rig:\n"
                    "    def __init__(self):\n"
                    "        self.n = 0\n"
                ),
                "repro.use": (
                    "from repro.rig import Rig\n"
                    "def build():\n"
                    "    return Rig()\n"
                ),
            }
        )
        build = graph.functions["repro.use.build"]
        (call,) = [c for c in build.calls if c.callees]
        assert graph.callee_functions(call) == ["repro.rig.Rig.__init__"]
