"""ARCH010: faults raised under BenchmarkRunner.execute must unwind."""

from __future__ import annotations


def runner_module(body: str) -> str:
    return (
        "from repro.measure.rig import read_channel\n"
        "\n"
        "class BenchmarkRunner:\n"
        "    def execute(self):\n"
        "        return read_channel()\n" + body
    )


DRIVER = """
    class RigFaultError(Exception):
        pass

    def sample():
        raise RigFaultError("bad channel")
    """


def rig_module(handler: str) -> str:
    return (
        "from repro.measure.driver import sample\n"
        "\n"
        "def read_channel():\n"
        "    try:\n"
        "        return sample()\n" + handler
    )


def files_with(handler: str) -> dict[str, str]:
    return {
        "repro/microbench/runner.py": runner_module(""),
        "repro/measure/rig.py": rig_module(handler),
        "repro/measure/driver.py": DRIVER,
    }


class TestFaultFlow:
    def test_broad_except_swallow_is_flagged(self, project):
        findings, _ = project(
            files_with("    except Exception:\n        return None\n"),
            codes=["ARCH010"],
        )
        assert [f.code for f in findings] == ["ARCH010"]
        (finding,) = findings
        assert finding.path.endswith("repro/measure/rig.py")
        assert "RigFaultError" in finding.message
        assert "sample" in finding.message

    def test_bare_except_swallow_is_flagged(self, project):
        findings, _ = project(
            files_with("    except:\n        return None\n"),
            codes=["ARCH010"],
        )
        assert [f.code for f in findings] == ["ARCH010"]

    def test_broad_except_with_reraise_is_clean(self, project):
        findings, _ = project(
            files_with(
                "    except Exception:\n        raise\n"
            ),
            codes=["ARCH010"],
        )
        assert findings == []

    def test_fault_specific_handler_is_clean(self, project):
        # Catching the fault class explicitly is legitimate handling.
        findings, _ = project(
            files_with(
                "    except RigFaultError:\n        return None\n"
            ),
            codes=["ARCH010"],
        )
        assert findings == []

    def test_value_error_handler_does_not_catch_faults(self, project):
        # ValueError is deliberately not fault-catching: the fault
        # escapes past it, so nothing is swallowed.
        findings, _ = project(
            files_with(
                "    except ValueError:\n        return None\n"
            ),
            codes=["ARCH010"],
        )
        assert findings == []

    def test_swallow_outside_runner_scope_is_clean(self, project):
        # The same swallow pattern not reachable from execute() is out
        # of scope for ARCH010.
        files = {
            "repro/measure/rig.py": rig_module(
                "    except Exception:\n        return None\n"
            ),
            "repro/measure/driver.py": DRIVER,
        }
        findings, _ = project(files, codes=["ARCH010"])
        assert findings == []

    def test_swallow_two_hops_below_execute(self, project):
        files = {
            "repro/microbench/runner.py": runner_module(""),
            "repro/measure/rig.py": (
                "from repro.measure.session import pull\n"
                "\n"
                "def read_channel():\n"
                "    return pull()\n"
            ),
            "repro/measure/session.py": (
                "from repro.measure.driver import sample\n"
                "\n"
                "def pull():\n"
                "    try:\n"
                "        return sample()\n"
                "    except Exception:\n"
                "        return None\n"
            ),
            "repro/measure/driver.py": DRIVER,
        }
        findings, _ = project(files, codes=["ARCH010"])
        assert [f.code for f in findings] == ["ARCH010"]
        assert findings[0].path.endswith("repro/measure/session.py")

    def test_suppression_at_origin_endpoint(self, project):
        files = {
            "repro/microbench/runner.py": runner_module(""),
            "repro/measure/rig.py": rig_module(
                "    except Exception:\n        return None\n"
            ),
            "repro/measure/driver.py": (
                "class RigFaultError(Exception):\n"
                "    pass\n"
                "\n"
                "def sample():\n"
                "    # archlint: disable=ARCH010\n"
                '    raise RigFaultError("bad channel")\n'
            ),
        }
        findings, _ = project(files, codes=["ARCH010"])
        assert findings == []
