"""ARCH009: unit suffixes across call, return and assignment boundaries."""

from __future__ import annotations


def codes(findings):
    return [f.code for f in findings]


class TestCallBoundary:
    def test_joules_into_seconds_parameter(self, project):
        files = {
            "repro/report.py": """
                from repro.machine.power import average_power

                def summarize(energy_joules):
                    return average_power(energy_joules)
                """,
            "repro/machine/power.py": """
                def average_power(duration_seconds):
                    return 1.0 / duration_seconds
                """,
        }
        findings, _ = project(files, codes=["ARCH009"])
        assert codes(findings) == ["ARCH009"]
        (finding,) = findings
        assert finding.path.endswith("repro/report.py")
        assert "joules" in finding.message
        assert "duration_seconds" in finding.message

    def test_keyword_argument_mismatch(self, project):
        files = {
            "repro/report.py": """
                from repro.machine.power import average_power

                def summarize(energy_joules):
                    return average_power(duration_seconds=energy_joules)
                """,
            "repro/machine/power.py": """
                def average_power(*, duration_seconds):
                    return 1.0 / duration_seconds
                """,
        }
        findings, _ = project(files, codes=["ARCH009"])
        assert codes(findings) == ["ARCH009"]

    def test_matching_units_are_clean(self, project):
        files = {
            "repro/report.py": """
                from repro.machine.power import average_power

                def summarize(elapsed_seconds):
                    return average_power(elapsed_seconds)
                """,
            "repro/machine/power.py": """
                def average_power(duration_seconds):
                    return 1.0 / duration_seconds
                """,
        }
        findings, _ = project(files, codes=["ARCH009"])
        assert findings == []

    def test_method_call_skips_self(self, project):
        files = {
            "repro/report.py": """
                from repro.machine.power import Meter

                def summarize(elapsed_seconds):
                    meter = Meter()
                    return meter.charge(elapsed_seconds)
                """,
            "repro/machine/power.py": """
                class Meter:
                    def charge(self, duration_seconds):
                        return duration_seconds
                """,
        }
        findings, _ = project(files, codes=["ARCH009"])
        assert findings == []

    def test_dataclass_constructor_fields(self, project):
        files = {
            "repro/report.py": """
                from repro.machine.power import Sample

                def build(energy_joules):
                    return Sample(duration_seconds=energy_joules)
                """,
            "repro/machine/power.py": """
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class Sample:
                    duration_seconds: float
                """,
        }
        findings, _ = project(files, codes=["ARCH009"])
        assert codes(findings) == ["ARCH009"]


class TestReturnBoundary:
    def test_assignment_target_disagrees_with_return_unit(self, project):
        files = {
            "repro/report.py": """
                from repro.machine.clock import elapsed_seconds

                def tally():
                    total_joules = elapsed_seconds()
                    return total_joules
                """,
            "repro/machine/clock.py": """
                def elapsed_seconds():
                    return 1.0
                """,
        }
        findings, _ = project(files, codes=["ARCH009"])
        assert codes(findings) == ["ARCH009"]
        assert "joules" in findings[0].message
        assert "seconds" in findings[0].message

    def test_return_unit_chains_through_wrapper(self, project):
        # g has no suffix of its own; its unit comes from f via the
        # fixed point.
        files = {
            "repro/report.py": """
                from repro.machine.clock import wrapped

                def tally():
                    total_joules = wrapped()
                    return total_joules
                """,
            "repro/machine/clock.py": """
                def elapsed_seconds():
                    return 1.0

                def wrapped():
                    return elapsed_seconds()
                """,
        }
        findings, _ = project(files, codes=["ARCH009"])
        assert codes(findings) == ["ARCH009"]

    def test_perf_counter_is_seconds(self, project):
        files = {
            "repro/report.py": """
                import time

                def tally():
                    total_joules = time.perf_counter()
                    return total_joules
                """,
        }
        findings, _ = project(files, codes=["ARCH009"])
        assert codes(findings) == ["ARCH009"]


class TestDeclaredReturn:
    def test_function_name_vs_returned_suffix(self, project):
        files = {
            "repro/report.py": """
                def total_seconds(energy_joules):
                    return energy_joules
                """,
        }
        findings, _ = project(files, codes=["ARCH009"])
        assert codes(findings) == ["ARCH009"]
        assert "total_seconds" in findings[0].message

    def test_conflicting_evidence_never_guesses(self, project):
        # Two different return units -> unknown, so a caller
        # assignment cannot be flagged.
        files = {
            "repro/report.py": """
                from repro.machine.clock import mixed

                def tally():
                    total_joules = mixed()
                    return total_joules
                """,
            "repro/machine/clock.py": """
                def mixed(flag, a_seconds, b_joules):
                    if flag:
                        return a_seconds
                    return b_joules
                """,
        }
        findings, _ = project(files, codes=["ARCH009"])
        assert findings == []

    def test_suppression_on_call_line(self, project):
        files = {
            "repro/report.py": """
                from repro.machine.power import average_power

                def summarize(energy_joules):
                    # archlint: disable=ARCH009
                    return average_power(energy_joules)
                """,
            "repro/machine/power.py": """
                def average_power(duration_seconds):
                    return 1.0 / duration_seconds
                """,
        }
        findings, _ = project(files, codes=["ARCH009"])
        assert findings == []
