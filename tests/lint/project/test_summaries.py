"""Per-module summary extraction and its JSON round trip."""

from __future__ import annotations

import ast

from repro.lint.context import ModuleContext
from repro.lint.project.summaries import (
    ModuleSummary,
    absolute_imports,
    summarize_module,
    unit_suffix,
)


def summarize(source: str, module: str, path: str = "mod.py"):
    ctx = ModuleContext.from_source(source, path=path, module=module)
    return summarize_module(ctx)


class TestUnitSuffix:
    def test_known_suffixes(self):
        assert unit_suffix("elapsed_seconds") == "seconds"
        assert unit_suffix("total_joules") == "joules"
        assert unit_suffix("cap_watts") == "watts"

    def test_no_suffix(self):
        assert unit_suffix("elapsed") == ""
        assert unit_suffix("joules_total") == ""  # suffix only, not infix.


class TestAbsoluteImports:
    def test_relative_import_resolves_against_package(self):
        tree = ast.parse("from ..machine import engine\n")
        table = absolute_imports(
            tree, "repro.microbench.campaign", is_package=False
        )
        assert table["engine"] == "repro.machine.engine"

    def test_from_dot_import(self):
        tree = ast.parse("from . import runner\n")
        table = absolute_imports(
            tree, "repro.microbench.campaign", is_package=False
        )
        assert table["runner"] == "repro.microbench.runner"

    def test_package_init_resolves_from_itself(self):
        tree = ast.parse("from .campaign import ShardSpec\n")
        table = absolute_imports(
            tree, "repro.microbench", is_package=True
        )
        assert table["ShardSpec"] == "repro.microbench.campaign.ShardSpec"


SOURCE = '''
import time
from repro.store.store import CampaignStore

class RigFaultError(Exception):
    pass

def helper(budget_seconds):
    store = CampaignStore("root")
    try:
        store.put("k", budget_seconds)
    except ValueError:
        raise
    raise RigFaultError("boom")

def stamp_seconds():
    return time.time()
'''


class TestCollector:
    def test_call_sites_and_guards(self):
        summary = summarize(SOURCE, "repro.work")
        helper = {f.qname: f for f in summary.functions}["repro.work.helper"]
        put_calls = [
            c for c in helper.calls
            if "repro.store.store.CampaignStore.put" in c.callees
        ]
        assert len(put_calls) == 1
        (level,) = put_calls[0].guards
        assert level[0].caught == ("ValueError",)
        assert level[0].reraises

    def test_constructor_type_inference(self):
        # ``store = CampaignStore(...)`` makes ``store.put`` resolvable.
        summary = summarize(SOURCE, "repro.work")
        helper = {f.qname: f for f in summary.functions}["repro.work.helper"]
        callees = {ref for call in helper.calls for ref in call.callees}
        assert "repro.store.store.CampaignStore.put" in callees

    def test_sink_and_raise_sites(self):
        summary = summarize(SOURCE, "repro.work")
        by_name = {f.qname: f for f in summary.functions}
        stamp = by_name["repro.work.stamp_seconds"]
        assert [(s.kind, s.name) for s in stamp.sinks] == [
            ("clock", "time.time")
        ]
        helper = by_name["repro.work.helper"]
        assert [r.exc for r in helper.raises] == ["RigFaultError"]

    def test_dotted_chain_records_one_sink(self):
        # ``time.time()`` must not double-count via its Name root.
        summary = summarize(SOURCE, "repro.work")
        stamp = {f.qname: f for f in summary.functions}[
            "repro.work.stamp_seconds"
        ]
        assert len(stamp.sinks) == 1

    def test_unimported_name_is_not_a_sink(self):
        summary = summarize(
            "def f(time):\n    return time.time()\n", "repro.work"
        )
        (func,) = summary.functions
        assert func.sinks == ()

    def test_declared_return_unit_from_name(self):
        summary = summarize(SOURCE, "repro.work")
        stamp = {f.qname: f for f in summary.functions}[
            "repro.work.stamp_seconds"
        ]
        assert stamp.return_unit_declared == "seconds"
        assert stamp.return_refs == ("c:time.time",)

    def test_arg_units_recorded(self):
        source = (
            "from repro.power import draw\n"
            "def f(energy_joules):\n"
            "    return draw(energy_joules, cap_watts=3.0)\n"
        )
        summary = summarize(source, "repro.work")
        (func,) = summary.functions
        (call,) = [
            c for c in func.calls if "repro.power.draw" in c.callees
        ]
        assert call.arg_units == ("u:joules",)

    def test_round_trip_is_lossless(self):
        summary = summarize(SOURCE, "repro.work", path="repro/work.py")
        assert ModuleSummary.from_dict(summary.to_dict()) == summary

    def test_class_shape(self):
        source = (
            "from dataclasses import dataclass\n"
            "from repro.core.fit import Fit\n"
            "@dataclass(frozen=True)\n"
            "class Report:\n"
            "    fit: Fit\n"
            "    n: int\n"
        )
        summary = summarize(source, "repro.microbench.campaign")
        (cls,) = summary.classes
        assert cls.is_dataclass and cls.frozen
        fit_field = cls.fields[0]
        assert "repro.core.fit.Fit" in fit_field.refs
