"""ARCH008: call paths from pool-boundary entries to RNG/clock sinks."""

from __future__ import annotations


TAINTED = {
    "repro/microbench/campaign.py": """
        from repro.store.store import save_entry

        def run_shard(spec):
            return save_entry(spec)
        """,
    "repro/store/store.py": """
        import time

        def save_entry(spec):
            return {"created": time.time(), "spec": spec}
        """,
}


def codes(findings):
    return [f.code for f in findings]


class TestTaint:
    def test_wall_clock_sink_reached_from_run_shard(self, project):
        findings, _ = project(TAINTED, codes=["ARCH008"])
        assert codes(findings) == ["ARCH008"]
        (finding,) = findings
        assert finding.path.endswith("repro/store/store.py")
        assert "run_shard" in finding.message
        assert "time.time" in finding.message
        assert "save_entry" in finding.message  # the call chain.

    def test_multi_hop_chain(self, project):
        files = {
            "repro/microbench/campaign.py": """
                from repro.store.store import save_entry

                def run_shard(spec):
                    return save_entry(spec)
                """,
            "repro/store/store.py": """
                from repro.store.clockutil import stamp

                def save_entry(spec):
                    return stamp()
                """,
            "repro/store/clockutil.py": """
                import time

                def stamp():
                    return time.time()
                """,
        }
        findings, _ = project(files, codes=["ARCH008"])
        assert codes(findings) == ["ARCH008"]
        assert "save_entry" in findings[0].message
        assert "stamp" in findings[0].message

    def test_global_rng_sink(self, project):
        files = {
            "repro/microbench/campaign.py": """
                import numpy as np

                def run_shard(spec):
                    return np.random.rand(3)
                """,
        }
        findings, _ = project(files, codes=["ARCH008"])
        assert codes(findings) == ["ARCH008"]
        assert "numpy.random.rand" in findings[0].message

    def test_explicit_generator_and_perf_counter_are_clean(self, project):
        files = {
            "repro/microbench/campaign.py": """
                import time
                import numpy as np

                def run_shard(spec):
                    rng = np.random.default_rng(spec)
                    start = time.perf_counter()
                    return rng.normal(), time.perf_counter() - start
                """,
        }
        findings, _ = project(files, codes=["ARCH008"])
        assert findings == []

    def test_sink_outside_entry_reachability_is_clean(self, project):
        files = {
            "repro/microbench/campaign.py": """
                def run_shard(spec):
                    return spec
                """,
            "repro/store/store.py": """
                import time

                def unrelated():
                    return time.time()
                """,
        }
        findings, _ = project(files, codes=["ARCH008"])
        assert findings == []

    def test_suppression_at_sink_endpoint(self, project):
        files = dict(TAINTED)
        files["repro/store/store.py"] = """
            import time

            def save_entry(spec):
                # gc-age metadata, not measurement time.
                # archlint: disable=ARCH008
                return {"created": time.time(), "spec": spec}
            """
        findings, _ = project(files, codes=["ARCH008"])
        assert findings == []

    def test_suppression_at_entry_endpoint(self, project):
        files = dict(TAINTED)
        files["repro/microbench/campaign.py"] = """
            from repro.store.store import save_entry

            # archlint: disable=ARCH008
            def run_shard(spec):
                return save_entry(spec)
            """
        findings, _ = project(files, codes=["ARCH008"])
        assert findings == []
