"""CLI surface of the project mode: --project/--jobs/--cache,
--include-tests, --changed, and the flag-combination contract."""

from __future__ import annotations

import json
import subprocess
import textwrap

import pytest

from repro.lint.cli import main as lint_main

from .conftest import build_tree

DIRTY_TREE = {
    "repro/microbench/campaign.py": """
        from repro.store.store import save_entry

        def run_shard(spec):
            return save_entry(spec)
        """,
    "repro/store/store.py": """
        import time

        def save_entry(spec):
            return {"created": time.time(), "spec": spec}
        """,
}


@pytest.fixture()
def dirty(tmp_path):
    build_tree(tmp_path, DIRTY_TREE)
    return tmp_path / "repro"


class TestProjectFlag:
    def test_project_mode_finds_cross_module_violation(self, dirty, capsys):
        assert lint_main([str(dirty)]) == 0  # per-file mode: clean.
        capsys.readouterr()
        assert lint_main([str(dirty), "--project"]) == 1
        captured = capsys.readouterr()
        assert "ARCH008" in captured.out
        assert "archlint project:" in captured.err

    def test_stats_line_reports_cache_hits(self, dirty, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert lint_main([str(dirty), "--project", "--cache", cache]) == 1
        assert "cache_hits=0" in capsys.readouterr().err
        assert lint_main([str(dirty), "--project", "--cache", cache]) == 1
        err = capsys.readouterr().err
        assert "analyzed=0" in err
        assert "hit_rate=1.00" in err

    def test_cold_and_warm_json_are_identical(self, dirty, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        args = [str(dirty), "--project", "--cache", cache, "--format", "json"]
        lint_main(args)
        cold = capsys.readouterr().out
        lint_main(args)
        warm = capsys.readouterr().out
        assert cold == warm
        assert json.loads(cold)["total"] == 1

    def test_jobs_flag(self, dirty, capsys):
        assert lint_main([str(dirty), "--project", "--jobs", "2"]) == 1
        assert "jobs=2" in capsys.readouterr().err

    def test_select_project_rule_only(self, dirty, capsys):
        assert (
            lint_main([str(dirty), "--project", "--select", "ARCH011"]) == 0
        )

    def test_list_rules_includes_project_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("ARCH008", "ARCH009", "ARCH010", "ARCH011"):
            assert code in out
        assert "[project]" in out

    def test_update_baseline_retires_project_finding(
        self, dirty, tmp_path, capsys
    ):
        baseline = str(tmp_path / "baseline.json")
        assert (
            lint_main(
                [str(dirty), "--project", "--update-baseline",
                 "--baseline", baseline]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            lint_main([str(dirty), "--project", "--baseline", baseline])
            == 0
        )


class TestFlagContract:
    def test_jobs_without_project_is_usage_error(self, dirty, capsys):
        assert lint_main([str(dirty), "--jobs", "2"]) == 2
        assert "--project" in capsys.readouterr().err

    def test_cache_without_project_is_usage_error(self, dirty, capsys):
        assert lint_main([str(dirty), "--cache", "/tmp/x"]) == 2

    def test_zero_jobs_is_usage_error(self, dirty, capsys):
        assert lint_main([str(dirty), "--project", "--jobs", "0"]) == 2

    def test_changed_with_project_is_usage_error(self, dirty, capsys):
        assert lint_main([str(dirty), "--project", "--changed"]) == 2


class TestIncludeTests:
    def test_relaxed_pass_over_tests_dir(self, tmp_path, monkeypatch, capsys):
        src = tmp_path / "src"
        (src).mkdir()
        (src / "clean.py").write_text("def f(x):\n    return x\n")
        tests = tmp_path / "tests"
        tests.mkdir()
        (tests / "helper.py").write_text(
            textwrap.dedent(
                """
                def run(step):
                    try:
                        step()
                    except:
                        pass
                """
            )
        )
        monkeypatch.chdir(tmp_path)
        assert lint_main(["src"]) == 0
        capsys.readouterr()
        assert lint_main(["src", "--include-tests"]) == 1
        out = capsys.readouterr().out
        assert "ARCH003" in out
        assert "helper.py" in out

    def test_telemetry_rule_not_in_relaxed_subset(
        self, tmp_path, monkeypatch, capsys
    ):
        src = tmp_path / "src"
        src.mkdir()
        (src / "clean.py").write_text("X = 1\n")
        tests = tmp_path / "tests"
        tests.mkdir()
        # A span-site recorder parameter without a NULL_RECORDER
        # default would trip ARCH006 in src; test doubles are exempt.
        (tests / "fake.py").write_text(
            "def probe(recorder):\n    return recorder\n"
        )
        monkeypatch.chdir(tmp_path)
        assert lint_main(["src", "--include-tests"]) == 0


def _git(cwd, *args):
    subprocess.run(
        ["git", "-c", "user.email=t@t", "-c", "user.name=t", *args],
        cwd=cwd,
        check=True,
        capture_output=True,
    )


class TestChanged:
    def test_changed_limits_to_worktree_diff(
        self, tmp_path, monkeypatch, capsys
    ):
        src = tmp_path / "src"
        src.mkdir()
        committed = src / "dirty_committed.py"
        committed.write_text(
            "def run(step):\n    try:\n        step()\n"
            "    except:\n        pass\n"
        )
        _git(tmp_path, "init", "-q")
        _git(tmp_path, "add", ".")
        _git(tmp_path, "commit", "-qm", "seed")
        monkeypatch.chdir(tmp_path)
        # Nothing changed: clean exit without linting the dirty file.
        assert lint_main(["src", "--changed"]) == 0
        assert "no changed files" in capsys.readouterr().err
        # An untracked dirty file is picked up.
        (src / "fresh.py").write_text(
            "def run(step):\n    try:\n        step()\n"
            "    except:\n        pass\n"
        )
        assert lint_main(["src", "--changed"]) == 1
        out = capsys.readouterr().out
        assert "fresh.py" in out
        assert "dirty_committed.py" not in out

    def test_changed_outside_git_is_usage_error(
        self, tmp_path, monkeypatch, capsys
    ):
        src = tmp_path / "src"
        src.mkdir()
        (src / "a.py").write_text("X = 1\n")
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("GIT_DIR", str(tmp_path / "nonexistent"))
        assert lint_main(["src", "--changed"]) == 2
        assert "git" in capsys.readouterr().err
