"""Baseline write / load / filter round-trip behaviour."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.lint import lint_source, load_baseline, write_baseline
from repro.lint.baseline import (
    BASELINE_VERSION,
    assign_fingerprints,
    filter_baselined,
)

MODULE = "repro.machine.fake"

DIRTY = textwrap.dedent(
    """
    import random

    def check(sigma):
        return random.random() == sigma
    """
)


def findings_for(source: str):
    return lint_source(source, module=MODULE, path="src/repro/machine/fake.py")


def test_round_trip_filters_every_known_finding(tmp_path):
    findings = findings_for(DIRTY)
    assert findings, "fixture must produce findings"
    path = tmp_path / "baseline.json"
    write_baseline(path, findings)
    fingerprints = load_baseline(path)
    fresh, matched = filter_baselined(findings, fingerprints)
    assert fresh == []
    assert matched == len(findings)


def test_new_findings_survive_the_baseline(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, findings_for(DIRTY))
    fingerprints = load_baseline(path)
    extended = DIRTY + "\n\nbad_compare = 3.25 == threshold\n"
    fresh, matched = filter_baselined(findings_for(extended), fingerprints)
    assert len(fresh) == 1
    assert "3.25" in fresh[0].source_line
    assert matched > 0


def test_fingerprints_are_line_number_independent():
    shifted = "\n\n\n" + DIRTY
    base = assign_fingerprints(findings_for(DIRTY))
    moved = assign_fingerprints(findings_for(shifted))
    assert [fp for _, fp in base] == [fp for _, fp in moved]


def test_duplicate_findings_get_distinct_fingerprints():
    # Two identical violations on identical source lines must not
    # collapse into one baseline entry.
    source = textwrap.dedent(
        """
        def f(x):
            return x == 0.5

        def g(x):
            return x == 0.5
        """
    )
    fingerprints = [fp for _, fp in assign_fingerprints(findings_for(source))]
    assert len(fingerprints) == 2
    assert len(set(fingerprints)) == 2


def test_baseline_file_shape(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, findings_for(DIRTY))
    payload = json.loads(path.read_text())
    assert payload["version"] == BASELINE_VERSION
    for entry in payload["findings"]:
        assert set(entry) == {"fingerprint", "code", "path", "message"}


def test_empty_baseline_loads_empty(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, [])
    assert load_baseline(path) == set()


def test_malformed_baseline_raises(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text("not json at all {{{")
    with pytest.raises(ValueError):
        load_baseline(path)


def test_version_mismatch_raises(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 999, "findings": []}))
    with pytest.raises(ValueError):
        load_baseline(path)


def test_committed_repo_baseline_is_empty():
    import pathlib

    repo_root = pathlib.Path(__file__).resolve().parents[2]
    payload = json.loads((repo_root / "archlint.baseline.json").read_text())
    assert payload == {"findings": [], "version": BASELINE_VERSION}
