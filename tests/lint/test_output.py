"""Text / JSON / GitHub-annotation rendering, with schema validation."""

from __future__ import annotations

import json
import textwrap

from repro.lint import lint_source, render
from repro.lint.output import FORMATS, render_github, render_json, render_text

MODULE = "repro.machine.fake"

DIRTY = textwrap.dedent(
    """
    import random

    def check(sigma):
        return random.random() == sigma
    """
)


def findings():
    return lint_source(DIRTY, module=MODULE, path="src/repro/machine/fake.py")


# Hand-rolled schema check: {field: (required type(s), required?)}.
_FINDING_SCHEMA = {
    "path": str,
    "line": int,
    "col": int,
    "code": str,
    "severity": str,
    "message": str,
    "rule": str,
    "fingerprint": str,
}


def test_json_output_matches_schema():
    payload = json.loads(render_json(findings()))
    assert set(payload) == {"version", "findings", "counts", "total"}
    assert payload["version"] == 1
    assert payload["total"] == len(payload["findings"]) > 0
    assert sum(payload["counts"].values()) == payload["total"]
    for item in payload["findings"]:
        assert set(item) == set(_FINDING_SCHEMA)
        for field, typ in _FINDING_SCHEMA.items():
            assert isinstance(item[field], typ), field
        assert item["code"].startswith("ARCH")
        assert item["severity"] in ("error", "warning")
        assert item["line"] >= 1 and item["col"] >= 0
        assert len(item["fingerprint"]) == 40  # sha1 hex


def test_json_output_is_deterministic():
    assert render_json(findings()) == render_json(findings())


def test_text_output_lists_findings_and_summary():
    text = render_text(findings())
    assert "src/repro/machine/fake.py:" in text
    assert "ARCH001" in text
    assert "archlint:" in text.splitlines()[-1]


def test_text_output_clean():
    assert render_text([]) == "archlint: clean"


def test_github_annotations_format():
    *annotations, summary = render_github(findings()).splitlines()
    assert annotations, "expected at least one annotation"
    for line in annotations:
        assert line.startswith("::error ") or line.startswith("::warning ")
        assert "file=src/repro/machine/fake.py" in line
        assert line.split(",title=")[1].startswith("ARCH")
    assert summary.startswith("archlint:")


def test_github_escapes_newlines_and_percent():
    from repro.lint.findings import Finding, Severity

    finding = Finding(
        path="f.py",
        line=1,
        col=0,
        code="ARCH999",
        message="100% bad\nsecond line",
        rule="fake",
        severity=Severity.ERROR,
        source_line="x = 1",
    )
    annotation = render_github([finding]).splitlines()[0]
    assert "%25" in annotation and "%0A" in annotation


def test_render_dispatch_covers_all_formats():
    for fmt in FORMATS:
        assert isinstance(render(findings(), fmt), str)
