"""ARCH001: positive and negative fixtures for the determinism rule."""

from __future__ import annotations

import textwrap

from repro.lint import lint_source

MODULE = "repro.machine.fake"


def lint(source: str, module: str = MODULE):
    return lint_source(textwrap.dedent(source), module=module, codes=["ARCH001"])


def codes(source: str, module: str = MODULE):
    return [f.code for f in lint(source, module=module)]


def test_flags_stdlib_random_module_call():
    findings = lint(
        """
        import random

        def jitter():
            return random.random()
        """
    )
    assert [f.code for f in findings] == ["ARCH001"]
    assert "random.random" in findings[0].message


def test_flags_from_random_import():
    assert codes("from random import randint\n") == ["ARCH001"]


def test_flags_numpy_global_rng_function():
    findings = lint(
        """
        import numpy as np

        def noise(n):
            return np.random.rand(n)
        """
    )
    assert [f.code for f in findings] == ["ARCH001"]
    assert "numpy.random.rand" in findings[0].message


def test_allows_explicit_generator_construction():
    assert (
        codes(
            """
            import numpy as np

            def make_rng(seed):
                return np.random.default_rng(np.random.SeedSequence(seed))

            def typed(rng: np.random.Generator) -> np.random.Generator:
                return rng
            """
        )
        == []
    )


def test_flags_wall_clock_reads():
    findings = lint(
        """
        import time
        import datetime

        def stamp():
            return time.time(), datetime.datetime.now()
        """
    )
    assert [f.code for f in findings] == ["ARCH001", "ARCH001"]


def test_allows_monotonic_perf_counter():
    assert (
        codes(
            """
            import time

            def tick():
                return time.perf_counter()
            """
        )
        == []
    )


def test_flags_from_datetime_import():
    assert codes("from datetime import datetime\n") == ["ARCH001"]


def test_local_name_shadowing_is_not_flagged():
    # `random` here is a parameter, not the stdlib module: the rule only
    # follows attribute chains rooted in an *imported* binding.  This is
    # the exact false positive once hit on machine/platforms.py.
    assert (
        codes(
            """
            def build(random=None):
                return random.tau_access if random else 0.0
            """
        )
        == []
    )


def test_out_of_scope_modules_are_ignored():
    source = "import random\nx = random.random()\n"
    assert codes(source, module="repro.stats.fake") == []
    assert codes(source, module="repro.machine.fake") == ["ARCH001"]
    assert codes(source, module="repro.faults.fake") == ["ARCH001"]
    assert codes(source, module="repro.microbench.fake") == ["ARCH001"]
