"""ARCH002: positive and negative fixtures for pool picklability."""

from __future__ import annotations

import textwrap

from repro.lint import lint_source

POOL_MODULE = "repro.microbench.campaign"


def lint(source: str, module: str = POOL_MODULE):
    return lint_source(textwrap.dedent(source), module=module, codes=["ARCH002"])


def test_flags_unfrozen_dataclass():
    findings = lint(
        """
        from dataclasses import dataclass

        @dataclass
        class ShardThing:
            n: int
        """
    )
    assert [f.code for f in findings] == ["ARCH002"]
    assert "frozen=True" in findings[0].message


def test_flags_frozen_false():
    findings = lint(
        """
        from dataclasses import dataclass

        @dataclass(frozen=False)
        class ShardThing:
            n: int
        """
    )
    assert [f.code for f in findings] == ["ARCH002"]


def test_accepts_frozen_dataclass():
    assert (
        lint(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class ShardThing:
                n: int
                label: str = "x"
            """
        )
        == []
    )


def test_flags_unpicklable_field_annotation():
    findings = lint(
        """
        from dataclasses import dataclass
        from typing import Callable

        @dataclass(frozen=True)
        class ShardThing:
            hook: Callable[[int], int]
        """
    )
    assert [f.code for f in findings] == ["ARCH002"]
    assert "Callable" in findings[0].message


def test_flags_string_annotation_too():
    findings = lint(
        """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class ShardThing:
            hook: "Callable[[int], int]"
        """
    )
    assert [f.code for f in findings] == ["ARCH002"]


def test_classvar_fields_are_exempt():
    assert (
        lint(
            """
            from dataclasses import dataclass
            from typing import Callable, ClassVar

            @dataclass(frozen=True)
            class ShardThing:
                registry: ClassVar[Callable[[], None]] = None
                n: int = 0
            """
        )
        == []
    )


def test_non_dataclass_classes_are_ignored():
    assert (
        lint(
            """
            from typing import Callable

            class Helper:
                hook: Callable[[int], int]
            """
        )
        == []
    )


def test_rule_scoped_to_pool_modules():
    source = textwrap.dedent(
        """
        from dataclasses import dataclass

        @dataclass
        class Mutable:
            n: int
        """
    )
    assert lint_source(source, module="repro.stats.fake", codes=["ARCH002"]) == []
    assert len(lint_source(source, module="repro.machine.kernel", codes=["ARCH002"])) == 1
