"""ARCH007: positive and negative fixtures for store key stability."""

from __future__ import annotations

import textwrap

from repro.lint import lint_source

STORE_MODULE = "repro.store.store"


def lint(source: str, module: str = STORE_MODULE):
    return lint_source(
        textwrap.dedent(source), module=module, codes=["ARCH007"]
    )


def test_flags_unfrozen_store_dataclass():
    findings = lint(
        """
        from dataclasses import dataclass

        @dataclass
        class EntryHeader:
            key: str
        """
    )
    assert [f.code for f in findings] == ["ARCH007"]
    assert "frozen=True" in findings[0].message


def test_flags_set_annotated_field():
    findings = lint(
        """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class EntryHeader:
            kinds: set[str]
        """
    )
    assert [f.code for f in findings] == ["ARCH007"]
    assert "EntryHeader.kinds" in findings[0].message
    assert "stable content fingerprint" in findings[0].message


def test_flags_frozenset_and_callable():
    findings = lint(
        """
        from dataclasses import dataclass
        from typing import Callable, FrozenSet

        @dataclass(frozen=True)
        class EntryHeader:
            kinds: FrozenSet[str]
            loader: Callable[[], bytes]
        """
    )
    assert sorted(f.code for f in findings) == ["ARCH007", "ARCH007"]


def test_accepts_frozen_with_ordered_fields():
    assert (
        lint(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class EntryHeader:
                key: str
                by_kind: dict[str, int]
                platforms: tuple[str, ...]
            """
        )
        == []
    )


def test_classvar_fields_exempt():
    assert (
        lint(
            """
            from dataclasses import dataclass
            from typing import ClassVar

            @dataclass(frozen=True)
            class EntryHeader:
                KNOWN_KINDS: ClassVar[set] = {"shard", "fit"}
                key: str = ""
            """
        )
        == []
    )


def test_plain_classes_exempt():
    assert (
        lint(
            """
            class NotADataclass:
                kinds: set[str]
            """
        )
        == []
    )


def test_scope_is_store_only():
    findings = lint(
        """
        from dataclasses import dataclass

        @dataclass
        class EntryHeader:
            kinds: set[str]
        """,
        module="repro.microbench.suite",
    )
    assert [f.code for f in findings] == []


def test_repo_store_package_is_clean():
    """The shipped store modules satisfy their own rule."""
    from pathlib import Path

    import repro.store as store_pkg

    pkg_dir = Path(store_pkg.__file__).parent
    for path in sorted(pkg_dir.glob("*.py")):
        findings = lint_source(
            path.read_text(),
            module=f"repro.store.{path.stem}",
            codes=["ARCH007"],
        )
        assert findings == [], f"{path.name}: {findings}"
