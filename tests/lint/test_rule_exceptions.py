"""ARCH003: positive and negative fixtures for fault-exception hygiene."""

from __future__ import annotations

import textwrap

from repro.lint import lint_source


def lint(source: str, module: str = "repro.anywhere.fake"):
    return lint_source(textwrap.dedent(source), module=module, codes=["ARCH003"])


def test_flags_bare_except():
    findings = lint(
        """
        def run(step):
            try:
                step()
            except:
                pass
        """
    )
    assert [f.code for f in findings] == ["ARCH003"]
    assert "bare" in findings[0].message


def test_flags_broad_except_that_discards_error():
    findings = lint(
        """
        def run(step):
            try:
                step()
            except Exception:
                return None
        """
    )
    assert [f.code for f in findings] == ["ARCH003"]
    assert "retry/quarantine" in findings[0].message


def test_broad_except_with_reraise_is_fine():
    assert (
        lint(
            """
            def run(step):
                try:
                    step()
                except Exception:
                    cleanup()
                    raise
            """
        )
        == []
    )


def test_broad_except_that_records_the_error_is_fine():
    assert (
        lint(
            """
            def run(step, log):
                try:
                    step()
                except Exception as exc:
                    log.append(str(exc))
            """
        )
        == []
    )


def test_broad_except_binding_but_ignoring_error_is_flagged():
    findings = lint(
        """
        def run(step):
            try:
                step()
            except Exception as exc:
                return None
        """
    )
    assert [f.code for f in findings] == ["ARCH003"]


def test_flags_noop_rig_fault_handler():
    findings = lint(
        """
        from repro.faults.errors import RigFaultError

        def run(step):
            try:
                step()
            except RigFaultError:
                pass
        """
    )
    assert [f.code for f in findings] == ["ARCH003"]
    assert "drops a rig fault" in findings[0].message


def test_flags_noop_fault_subclass_in_tuple():
    findings = lint(
        """
        def run(step):
            try:
                step()
            except (ValueError, ShardTimeoutError):
                ...
        """
    )
    assert [f.code for f in findings] == ["ARCH003"]


def test_fault_handler_with_accounting_is_fine():
    assert (
        lint(
            """
            def run(step, report):
                try:
                    step()
                except RigFaultError as fault:
                    report.record(fault)
            """
        )
        == []
    )


def test_narrow_handlers_are_fine():
    assert (
        lint(
            """
            def parse(text):
                try:
                    return float(text)
                except ValueError:
                    return None
            """
        )
        == []
    )
