"""ARCH006: positive and negative fixtures for telemetry hygiene."""

from __future__ import annotations

import textwrap

from repro.lint import lint_source


def lint(source: str, module: str = "repro.machine.fake"):
    return lint_source(textwrap.dedent(source), module=module, codes=["ARCH006"])


def test_flags_recorder_param_without_default():
    findings = lint(
        """
        def run(kernel, recorder):
            return kernel
        """
    )
    assert [f.code for f in findings] == ["ARCH006"]
    assert "no default" in findings[0].message


def test_flags_recorder_defaulting_to_none():
    findings = lint(
        """
        def run(kernel, recorder=None):
            return kernel
        """
    )
    assert [f.code for f in findings] == ["ARCH006"]
    assert "NULL_RECORDER" in findings[0].message


def test_accepts_null_recorder_default():
    assert (
        lint(
            """
            from repro.telemetry import NULL_RECORDER

            def run(kernel, recorder=NULL_RECORDER):
                return kernel

            def kw_only(kernel, *, recorder=NULL_RECORDER):
                return kernel

            def qualified(kernel, recorder=telemetry.NULL_RECORDER):
                return kernel
            """
        )
        == []
    )


def test_kwonly_recorder_without_default_is_flagged():
    findings = lint(
        """
        def run(kernel, *, recorder):
            return kernel
        """
    )
    assert [f.code for f in findings] == ["ARCH006"]


def test_other_params_are_not_recorder():
    assert lint("def run(kernel, recorder_factory=None):\n    return kernel\n") == []


def test_flags_rng_import_inside_telemetry():
    findings = lint(
        "import random\n", module="repro.telemetry.recorder"
    )
    assert [f.code for f in findings] == ["ARCH006"]
    assert "bit-identical" in findings[0].message


def test_flags_numpy_random_attribute_inside_telemetry():
    findings = lint(
        """
        import numpy as np

        def spoil():
            return np.random.default_rng()
        """,
        module="repro.telemetry.trace",
    )
    assert [f.code for f in findings] == ["ARCH006"]


def test_rng_use_outside_telemetry_is_arch006_clean():
    # Outside repro.telemetry the RNG half of the rule does not apply
    # (ARCH001 owns model-path RNG discipline).
    assert (
        lint(
            """
            import numpy as np

            def rng():
                return np.random.default_rng(0)
            """,
            module="repro.experiments.fake",
        )
        == []
    )


def test_local_variable_named_random_is_fine_in_telemetry():
    assert (
        lint(
            """
            def shuffle(random=None):
                return random.thing if random else None
            """,
            module="repro.telemetry.recorder",
        )
        == []
    )
