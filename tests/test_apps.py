"""Tests for the apps package (abstract algorithms on machines)."""

import math

import pytest

from repro.apps import (
    best_platform,
    evaluate,
    fast_memory_capacity,
    fft,
    matrix_multiply,
    regime_transition_size,
    sort_mergesort,
    spmv_csr,
    stencil,
    stream_triad,
)
from repro.machine.platforms import all_platforms, platform


class TestAlgorithmModels:
    def test_instance_validation(self):
        mm = matrix_multiply()
        with pytest.raises(ValueError):
            mm.instance(0, 1024)
        with pytest.raises(ValueError):
            mm.instance(100, 0)

    def test_matmul_intensity_grows_with_cache(self):
        """The Hong-Kung result: intensity ~ sqrt(Z)."""
        mm = matrix_multiply()
        n = 1e5
        i_small = mm.intensity(n, 32 * 1024)
        i_large = mm.intensity(n, 32 * 1024 * 4)
        assert i_large > 1.5 * i_small
        assert i_large / i_small == pytest.approx(2.0, rel=0.15)

    def test_matmul_intensity_saturates_in_n(self):
        mm = matrix_multiply()
        Z = 1 << 20
        assert mm.intensity(1e7, Z) == pytest.approx(
            mm.intensity(1e8, Z), rel=0.01
        )

    def test_fft_intensity_in_papers_range(self):
        """'a large FFT is 2-4 flop:Byte' (Section I), give or take the
        cache size: a few flop per byte, nearly size-independent."""
        f = fft()
        for Z in (32 * 1024, 1 << 20):
            i_val = f.intensity(2 ** 24, Z)
            assert 1.0 < i_val < 8.0, Z
        assert f.intensity(2 ** 20, 1 << 20) == pytest.approx(
            f.intensity(2 ** 30, 1 << 20), rel=0.35
        )

    def test_fft_intensity_grows_with_log_cache(self):
        f = fft()
        n = 2 ** 30
        assert f.intensity(n, 1 << 22) > f.intensity(n, 1 << 14)

    def test_streaming_kernels_cache_independent(self):
        for alg in (stencil(), stream_triad()):
            assert alg.intensity(1e6, 1 << 14) == alg.intensity(1e6, 1 << 24)

    def test_stencil_intensity_value(self):
        # 7-point: 14 flops per 8 bytes moved = 1.75.
        assert stencil(7).intensity(1e6, 1 << 20) == pytest.approx(1.75)

    def test_triad_intensity_value(self):
        assert stream_triad().intensity(1e6, 1 << 20) == pytest.approx(
            2.0 / 12.0
        )

    def test_spmv_intensity_in_papers_range(self):
        """'a large sparse matrix-vector multiply is roughly 0.25-0.5
        flop:Byte' -- our CSR model with the vector resident lands in
        range; spilling the vector drops it a bit below."""
        sp = spmv_csr()
        resident = sp.intensity(1e4, 1 << 20)  # x fits in 1 MiB
        assert 0.2 <= resident <= 0.5
        spilled = sp.intensity(1e8, 1 << 20)
        assert spilled < resident

    def test_mergesort_work_unit(self):
        ms = sort_mergesort()
        assert ms.work_unit == "comparison"
        # In-cache sort: exactly one read + write pass.
        inst = ms.instance(1000, 1 << 20)
        assert inst.bytes_moved == pytest.approx(2 * 1000 * 4)

    def test_mergesort_external_passes(self):
        ms = sort_mergesort()
        small_cache = ms.instance(2 ** 24, 1 << 12)
        assert small_cache.bytes_moved > 2 * 2 ** 24 * 4


class TestAnalysis:
    def test_fast_memory_capacity(self):
        assert fast_memory_capacity(platform("gtx-titan")) == 1536 * 1024
        assert fast_memory_capacity(platform("nuc-gpu")) == 256 * 1024

    def test_evaluate_consistency(self):
        result = evaluate(fft(), 2 ** 22, platform("gtx-titan"))
        assert result.time > 0
        assert result.power == pytest.approx(result.energy / result.time)
        assert result.throughput == pytest.approx(
            result.instance.flops / result.time
        )

    def test_matmul_compute_bound_everywhere(self, platforms):
        """Large blocked matmul exceeds every platform's balance."""
        mm = matrix_multiply()
        from repro.core.model import Regime

        for cfg in platforms.values():
            result = evaluate(mm, 8192, cfg)
            assert result.regime is not Regime.MEMORY, cfg.name

    def test_stream_memory_bound_everywhere(self, platforms):
        from repro.core.model import Regime

        triad = stream_triad()
        for cfg in platforms.values():
            result = evaluate(triad, 1e8, cfg)
            assert result.regime is not Regime.COMPUTE, cfg.name

    def test_transition_size_matmul(self):
        """Small matmuls are memory-bound, large ones compute-bound:
        there is a crossing, and it is small (blocking pays quickly)."""
        n_star = regime_transition_size(matrix_multiply(), platform("gtx-titan"))
        assert n_star is not None
        assert 10 < n_star < 1e4
        mm = matrix_multiply()
        Z = fast_memory_capacity(platform("gtx-titan"))
        balance = platform("gtx-titan").truth.time_balance
        assert mm.intensity(n_star, Z) == pytest.approx(balance, rel=0.01)

    def test_transition_none_for_constant_intensity(self):
        assert regime_transition_size(stream_triad(), platform("gtx-titan")) is None

    def test_best_platform_objectives(self):
        pid_eff, result_eff = best_platform(
            fft(), 2 ** 24, all_platforms(), objective="work_per_joule"
        )
        pid_fast, result_fast = best_platform(
            fft(), 2 ** 24, all_platforms(), objective="throughput"
        )
        assert result_fast.throughput >= result_eff.throughput
        assert pid_fast in all_platforms()

    def test_best_platform_rejects_unknown_objective(self):
        with pytest.raises(ValueError):
            best_platform(fft(), 2 ** 20, all_platforms(), objective="area")

    def test_spmv_prefers_low_pi1_bandwidth_machines(self):
        pid, _ = best_platform(
            spmv_csr(), 1e7, all_platforms(), objective="work_per_joule"
        )
        assert platform(pid).truth.constant_power_fraction < 0.5


class TestBestPlatformRobustness:
    """Regression tests for the best_platform correctness fixes:
    deterministic tie-breaking and typed infeasibility exclusion."""

    def _nan_config(self, pid: str):
        """A platform whose theta went pathological (NaN taus).

        ``MachineParams`` validates its fields, so a corrupted vector
        (e.g. deserialised from a damaged store entry) is simulated by
        bypassing the frozen dataclass -- the selection layer must
        stay robust even when construction-time validation was dodged.
        """
        import copy
        from dataclasses import replace

        truth = copy.copy(platform(pid).truth)
        object.__setattr__(truth, "tau_flop", math.nan)
        object.__setattr__(truth, "tau_mem", math.nan)
        return replace(platform(pid), truth=truth)

    def test_ties_break_on_platform_id_not_dict_order(self):
        """Two identical platforms under different ids: the winner is
        the lexicographically first id, whatever the insertion order."""
        cfg = platform("gtx-titan")
        forward = {"aaa-clone": cfg, "zzz-clone": cfg}
        backward = {"zzz-clone": cfg, "aaa-clone": cfg}
        pid_f, _ = best_platform(fft(), 2 ** 22, forward)
        pid_b, _ = best_platform(fft(), 2 ** 22, backward)
        assert pid_f == pid_b == "aaa-clone"

    def test_nan_prediction_is_excluded_not_winner(self):
        """Pre-fix, a NaN score evaluated first poisoned every later
        `score > best` comparison and the NaN platform won."""
        configs = dict(all_platforms())
        configs["aa-broken"] = self._nan_config("gtx-titan")
        pid, result = best_platform(fft(), 2 ** 24, configs)
        assert pid != "aa-broken"
        assert math.isfinite(result.energy)

    def test_all_infeasible_raises_with_reasons(self):
        from repro.apps import rank_platforms

        configs = {"aa-broken": self._nan_config("gtx-titan")}
        with pytest.raises(ValueError, match="aa-broken"):
            best_platform(fft(), 2 ** 20, configs)
        ranked, excluded = rank_platforms(fft(), 2 ** 20, configs)
        assert ranked == []
        assert len(excluded) == 1
        assert "non-finite" in excluded[0].reason

    def test_unsupported_precision_is_excluded(self):
        """Platforms without double-precision parameters are excluded
        (with a reason), not a crash."""
        from repro.apps import rank_platforms

        ranked, excluded = rank_platforms(
            fft(), 2 ** 22, all_platforms(), precision="double"
        )
        assert ranked  # some Table I platforms do support double
        assert excluded  # and several do not
        assert {e.platform_id for e in excluded}.isdisjoint(
            pid for pid, _ in ranked
        )

    def test_residency_exclusion_opt_in(self):
        """require_resident excludes working sets beyond fast memory;
        the default keeps the historical DRAM-streaming semantics."""
        from repro.apps import rank_platforms

        configs = all_platforms()
        ranked_default, _ = rank_platforms(matrix_multiply(), 8192, configs)
        assert len(ranked_default) == len(configs)
        ranked_resident, excluded = rank_platforms(
            matrix_multiply(), 8192, configs, require_resident=True
        )
        # 3 * 8192^2 * 4 B working set dwarfs every modelled cache.
        assert ranked_resident == []
        assert all("working set" in e.reason for e in excluded)

    def test_working_set_models(self):
        inst = matrix_multiply().instance(1024, 1 << 20)
        assert inst.working_set == pytest.approx(3 * 1024 * 1024 * 4)
        assert not inst.fits_fast_memory
        small = stream_triad().instance(100, 1 << 20)
        assert small.fits_fast_memory
