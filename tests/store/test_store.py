"""CampaignStore: round-trips, atomicity, eviction, maintenance."""

from __future__ import annotations

import hashlib
import json
import os

import pytest

import repro.machine.engine as engine_module
import repro.store.atomic as atomic_module
from repro.store import CampaignStore, atomic_write_bytes

KEY = hashlib.sha1(b"cell-one").hexdigest()
OTHER = hashlib.sha1(b"cell-two").hexdigest()


@pytest.fixture
def store(tmp_path):
    return CampaignStore(tmp_path / "cache")


class TestRoundTrip:
    def test_put_then_get(self, store):
        payload = {"observations": [1.5, 2.5], "name": "titan"}
        store.put(KEY, payload, kind="shard", platform="gtx-titan")
        assert store.get(KEY, kind="shard") == payload
        assert (store.hits, store.misses, store.puts) == (1, 0, 1)

    def test_missing_key_is_a_miss(self, store):
        assert store.get(KEY) is None
        assert (store.hits, store.misses, store.stale) == (0, 1, 0)

    def test_keys_are_independent(self, store):
        store.put(KEY, "a", kind="shard")
        store.put(OTHER, "b", kind="shard")
        assert store.get(KEY) == "a"
        assert store.get(OTHER) == "b"

    def test_malformed_key_rejected(self, store):
        with pytest.raises(ValueError, match="malformed store key"):
            store.get("not-a-sha1")
        with pytest.raises(ValueError, match="malformed store key"):
            store.put("ABC", 1, kind="shard")  # uppercase/short

    def test_last_writer_wins(self, store):
        """Equal keys imply equal payloads; a republish is harmless."""
        store.put(KEY, "payload", kind="shard")
        store.put(KEY, "payload", kind="shard")
        assert store.get(KEY) == "payload"
        assert store.stats().entries == 1


class TestFailStale:
    def test_kind_mismatch_evicts(self, store):
        store.put(KEY, "campaign-payload", kind="campaign")
        assert store.get(KEY, kind="fit") is None
        assert store.stale == 1
        # Evicted: the entry is gone even for the right kind.
        assert store.get(KEY, kind="campaign") is None
        assert store.misses == 1

    def test_truncated_entry_evicts(self, store):
        path = store.put(KEY, list(range(100)), kind="shard")
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        assert store.get(KEY) is None
        assert store.stale == 1
        assert not path.exists()

    def test_tampered_payload_evicts(self, store):
        path = store.put(KEY, "honest", kind="shard")
        header, _, body = path.read_bytes().partition(b"\n")
        path.write_bytes(header + b"\n" + b"x" * len(body))
        assert store.get(KEY) is None
        assert store.stale == 1

    def test_garbage_header_evicts(self, store):
        path = store.put(KEY, 1, kind="shard")
        path.write_bytes(b"not json\n" + b"body")
        assert store.get(KEY) is None
        assert store.stale == 1

    def test_foreign_engine_version_evicts(self, store, monkeypatch):
        store.put(KEY, "old-world", kind="shard")
        monkeypatch.setattr(
            engine_module,
            "ENGINE_FINGERPRINT_VERSION",
            engine_module.ENGINE_FINGERPRINT_VERSION + 1,
        )
        assert store.get(KEY) is None
        assert store.stale == 1


class TestAtomicWrite:
    def test_failed_replace_preserves_original(self, tmp_path, monkeypatch):
        target = tmp_path / "data.bin"
        target.write_bytes(b"original")

        def explode(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(atomic_module.os, "replace", explode)
        with pytest.raises(OSError, match="disk full"):
            atomic_write_bytes(target, b"partial garbage")
        assert target.read_bytes() == b"original"
        # The temp file was cleaned up, not leaked.
        assert list(tmp_path.iterdir()) == [target]

    def test_interrupted_write_never_registers_entry(
        self, store, monkeypatch
    ):
        store.put(KEY, "good", kind="shard")

        def explode(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(atomic_module.os, "replace", explode)
        with pytest.raises(OSError):
            store.put(KEY, "good", kind="shard")
        monkeypatch.undo()
        assert store.get(KEY) == "good"  # old entry intact.
        assert store.verify() == []


class TestMaintenance:
    def test_stats(self, store):
        store.put(KEY, "a" * 100, kind="shard", platform="gtx-titan")
        store.put(OTHER, "b", kind="fit", platform="xeon-phi")
        stats = store.stats()
        assert stats.entries == 2
        assert stats.by_kind == {"shard": 1, "fit": 1}
        assert stats.platforms == ("gtx-titan", "xeon-phi")
        assert stats.stale_engine_entries == 0
        assert stats.payload_bytes > 100
        assert "2 entries" in stats.describe()

    def test_gc_reclaims_foreign_engine_entries(self, store, monkeypatch):
        store.put(KEY, "old", kind="shard")
        monkeypatch.setattr(
            engine_module,
            "ENGINE_FINGERPRINT_VERSION",
            engine_module.ENGINE_FINGERPRINT_VERSION + 1,
        )
        store.put(OTHER, "new", kind="shard")
        assert store.stats().stale_engine_entries == 1
        result = store.gc()
        assert (result.removed, result.kept) == (1, 1)
        assert result.reclaimed_bytes > 0
        assert store.get(OTHER) == "new"

    def test_gc_max_age(self, store):
        path = store.put(KEY, "ancient", kind="shard")
        header, _, body = path.read_bytes().partition(b"\n")
        obj = json.loads(header)
        obj["created"] -= 1e6
        path.write_bytes(json.dumps(obj).encode() + b"\n" + body)
        store.put(OTHER, "fresh", kind="shard")
        result = store.gc(max_age_seconds=3600.0)
        assert (result.removed, result.kept) == (1, 1)

    def test_gc_rejects_negative_age(self, store):
        with pytest.raises(ValueError, match="non-negative"):
            store.gc(max_age_seconds=-1.0)

    def test_verify_clean(self, store):
        store.put(KEY, list(range(10)), kind="shard")
        assert store.verify() == []

    def test_verify_names_corruption(self, store):
        path = store.put(KEY, "x", kind="shard")
        header, _, body = path.read_bytes().partition(b"\n")
        path.write_bytes(header + b"\n" + b"?" * len(body))
        problems = store.verify()
        assert len(problems) == 1
        assert "sha1 mismatch" in problems[0]
        assert path.exists()  # verify without delete reports only.

    def test_verify_detects_misplaced_entry(self, store):
        path = store.put(KEY, "x", kind="shard")
        wrong = store._entry_path(OTHER)
        wrong.parent.mkdir(parents=True, exist_ok=True)
        os.rename(path, wrong)
        problems = store.verify()
        assert len(problems) == 1
        assert "does not address this path" in problems[0]

    def test_verify_delete_evicts(self, store):
        path = store.put(KEY, "x", kind="shard")
        path.write_bytes(b"junk with no header separator")
        problems = store.verify(delete=True)
        assert len(problems) == 1
        assert not path.exists()
        assert store.stats().entries == 0
