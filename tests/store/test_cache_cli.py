"""``archline cache`` and the campaign ``--cache`` flags."""

from __future__ import annotations

import hashlib

import pytest

from repro.cli import main
from repro.store import CampaignStore
from repro.store.cli import CACHE_DIR_ENV

KEY = hashlib.sha1(b"cli-entry").hexdigest()


@pytest.fixture(autouse=True)
def _no_ambient_cache(monkeypatch):
    """Tests control the cache dir explicitly; ignore the user's env."""
    monkeypatch.delenv(CACHE_DIR_ENV, raising=False)


class TestCacheSubcommand:
    def test_stats(self, tmp_path, capsys):
        CampaignStore(tmp_path).put(KEY, "x", kind="shard")
        assert main(["cache", "stats", "--dir", str(tmp_path)]) == 0
        assert "1 entries" in capsys.readouterr().out

    def test_no_dir_anywhere_is_usage_error(self, capsys):
        assert main(["cache", "stats"]) == 2
        assert CACHE_DIR_ENV in capsys.readouterr().err

    def test_env_var_supplies_dir(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        CampaignStore(tmp_path).put(KEY, "x", kind="fit")
        assert main(["cache", "stats"]) == 0
        assert "1 entries" in capsys.readouterr().out

    def test_verify_clean_store(self, tmp_path, capsys):
        CampaignStore(tmp_path).put(KEY, "x", kind="shard")
        assert main(["cache", "verify", "--dir", str(tmp_path)]) == 0
        assert "all entries verify" in capsys.readouterr().out

    def test_verify_reports_corruption(self, tmp_path, capsys):
        path = CampaignStore(tmp_path).put(KEY, "x", kind="shard")
        path.write_bytes(b"garbage")
        assert main(["cache", "verify", "--dir", str(tmp_path)]) == 1
        assert "corrupt" in capsys.readouterr().err

    def test_gc(self, tmp_path, capsys):
        CampaignStore(tmp_path).put(KEY, "x", kind="shard")
        assert main(["cache", "gc", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "kept 1" in out

    def test_gc_bad_age(self, tmp_path, capsys):
        # The shared strict validator now rejects this at parse time
        # (argparse exits 2) instead of deep in the gc handler.
        with pytest.raises(SystemExit) as err:
            main(
                [
                    "cache",
                    "gc",
                    "--dir",
                    str(tmp_path),
                    "--max-age-days",
                    "-1",
                ]
            )
        assert err.value.code == 2
        assert "must be >= 0" in capsys.readouterr().err

    def test_gc_rejects_nan_age(self, tmp_path, capsys):
        # Pre-fix, type=float accepted "nan", and a NaN age compares
        # false against every mtime -- gc would silently keep all.
        with pytest.raises(SystemExit) as err:
            main(
                [
                    "cache",
                    "gc",
                    "--dir",
                    str(tmp_path),
                    "--max-age-days",
                    "nan",
                ]
            )
        assert err.value.code == 2
        assert "finite" in capsys.readouterr().err


class TestCampaignFlags:
    def test_cache_and_no_cache_conflict(self, tmp_path):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(
                [
                    "campaign",
                    "pandaboard-es",
                    "--quick",
                    "--cache",
                    str(tmp_path),
                    "--no-cache",
                ]
            )

    def test_refresh_needs_a_cache(self):
        with pytest.raises(SystemExit, match="--refresh needs a cache"):
            main(["campaign", "pandaboard-es", "--quick", "--refresh"])

    def test_cold_then_warm_run(self, tmp_path, capsys):
        argv = [
            "campaign",
            "pandaboard-es",
            "--quick",
            "--workers",
            "1",
            "--cache",
            str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "1 misses" in cold and "0 hits" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "1 hits" in warm and "0 misses" in warm
        assert "hit rate 100" in warm

    def test_refresh_recomputes(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        base = [
            "campaign",
            "pandaboard-es",
            "--quick",
            "--workers",
            "1",
            "--cache",
            cache,
        ]
        assert main(base) == 0
        capsys.readouterr()
        assert main([*base, "--refresh"]) == 0
        out = capsys.readouterr().out
        assert "0 hits" in out and "1 misses" in out
