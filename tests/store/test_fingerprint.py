"""Canonical encoding and cell-key construction."""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np
import pytest

import repro.machine.engine as engine_module
from repro.faults.plan import FaultPlan
from repro.machine.platforms import platform
from repro.microbench.campaign import ShardSpec
from repro.store import (
    campaign_key,
    canonical,
    engine_fingerprint_version,
    fingerprint,
    fit_key,
    platform_fingerprint,
    shard_key,
)


class TestCanonical:
    def test_floats_encode_bit_exact(self):
        assert canonical(0.1) == (0.1).hex()
        # repr rounding would collapse these; hex() keeps them apart.
        assert canonical(0.1 + 0.2) != canonical(0.3)

    def test_signed_zeros_are_distinct(self):
        assert canonical(0.0) != canonical(-0.0)

    def test_int_and_float_do_not_collide(self):
        assert canonical(1) != canonical(1.0)

    def test_mapping_insertion_order_is_not_content(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_mapping_rejects_non_string_keys(self):
        with pytest.raises(TypeError, match="non-string key"):
            canonical({1: "x"})

    def test_rejects_sets(self):
        with pytest.raises(TypeError, match="unordered"):
            canonical({"items": {1, 2, 3}})

    def test_rejects_arbitrary_objects(self):
        with pytest.raises(TypeError, match="no stable canonical form"):
            canonical(object())

    def test_numpy_scalars_normalise_to_python(self):
        assert canonical(np.float64(0.5)) == canonical(0.5)
        assert canonical(np.int64(7)) == canonical(7)

    def test_ndarray_hashed_by_content(self):
        a = np.arange(4.0)
        b = np.arange(4.0)
        assert canonical(a) == canonical(b)
        assert canonical(a) != canonical(a[::-1].copy())

    def test_dataclass_type_name_participates(self):
        @dataclass(frozen=True)
        class A:
            x: int

        @dataclass(frozen=True)
        class B:
            x: int

        assert canonical(A(1)) != canonical(B(1))
        assert canonical(A(1)) == canonical(A(1))


def spec(**overrides) -> ShardSpec:
    base = dict(platform_id="gtx-titan", seed=7)
    base.update(overrides)
    return ShardSpec(**base)


class TestShardKey:
    def test_stable_across_calls(self):
        config = platform("gtx-titan")
        assert shard_key(config, spec()) == shard_key(config, spec())

    def test_seed_changes_key(self):
        config = platform("gtx-titan")
        assert shard_key(config, spec()) != shard_key(config, spec(seed=8))

    def test_trace_and_cache_fields_do_not_change_key(self):
        """Telemetry and cache control must never dirty a cell."""
        config = platform("gtx-titan")
        base = shard_key(config, spec())
        assert base == shard_key(config, spec(trace=True))
        assert base == shard_key(
            config, spec(cache_dir="/elsewhere", cache_refresh=True)
        )

    def test_platform_config_edit_changes_key(self):
        config = platform("gtx-titan")
        edited = replace(config, idle_power=config.idle_power * 1.01)
        assert shard_key(config, spec()) != shard_key(edited, spec())
        assert platform_fingerprint(config) != platform_fingerprint(edited)

    def test_other_platforms_unaffected_by_one_edit(self):
        """Editing one platform's config dirties only its own cells."""
        titan = platform("gtx-titan")
        phi = platform("xeon-phi")
        phi_key = shard_key(phi, spec(platform_id="xeon-phi"))
        edited_titan = replace(titan, idle_power=titan.idle_power * 2)
        assert shard_key(titan, spec()) != shard_key(edited_titan, spec())
        assert phi_key == shard_key(phi, spec(platform_id="xeon-phi"))

    def test_fault_plan_changes_key(self):
        config = platform("gtx-titan")
        plan = FaultPlan(seed=3, run_failure_rate=0.1)
        assert shard_key(config, spec()) != shard_key(
            config, spec(faults=plan)
        )
        # None and the all-zero plan behave identically but are
        # distinct configurations -- distinct cells.
        assert shard_key(config, spec()) != shard_key(
            config, spec(faults=FaultPlan.zero(seed=0))
        )

    def test_engine_version_changes_key(self, monkeypatch):
        config = platform("gtx-titan")
        before = shard_key(config, spec())
        monkeypatch.setattr(
            engine_module,
            "ENGINE_FINGERPRINT_VERSION",
            engine_module.ENGINE_FINGERPRINT_VERSION + 1,
        )
        assert engine_fingerprint_version() == (
            engine_module.ENGINE_FINGERPRINT_VERSION
        )
        assert shard_key(config, spec()) != before


class TestCampaignAndFitKeys:
    def test_campaign_key_covers_knobs(self):
        config = platform("gtx-titan")

        def key(**overrides):
            base = dict(
                seed=0,
                replicates=1,
                intensities=None,
                target_duration=0.1,
                include_double=False,
                include_cache=True,
                include_chase=True,
                faults=None,
                max_retries=2,
            )
            base.update(overrides)
            return campaign_key(config, **base)

        assert key() == key()
        assert key() != key(seed=1)
        assert key() != key(replicates=2)
        assert key() != key(intensities=[1.0, 2.0])
        assert key(intensities=[1.0]) == key(intensities=np.array([1.0]))

    def test_fit_key_covers_rng_state(self, quick_settings):
        from repro.machine.platforms import platform as plat
        from repro.microbench.suite import run_campaign

        campaign = run_campaign(
            plat("pandaboard-es"),
            seed=quick_settings.seed,
            replicates=1,
            include_double=False,
            include_chase=False,
        )
        same_a = fit_key(
            campaign, anchor_times=True, rng=np.random.default_rng(1)
        )
        same_b = fit_key(
            campaign, anchor_times=True, rng=np.random.default_rng(1)
        )
        assert same_a == same_b
        assert same_a != fit_key(
            campaign, anchor_times=True, rng=np.random.default_rng(2)
        )
        # A consumed generator is a different optimiser input.
        rng = np.random.default_rng(1)
        rng.random()
        assert same_a != fit_key(campaign, anchor_times=True, rng=rng)
        assert same_a != fit_key(campaign, anchor_times=False, rng=None)
