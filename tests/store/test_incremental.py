"""Incremental campaigns: cold/warm equivalence, invalidation, contention.

The store's core guarantee is differential: a warm replay must be
bit-identical to the cold computation it stands in for, with faults on
or off.  ``Campaign`` objects compare value-wise (``Observation`` holds
only scalars), and fits compare on their pickled parameter sets --
whole-object pickle bytes are NOT compared because pickle memo indices
legitimately differ between live and unpickled object graphs.
"""

from __future__ import annotations

import hashlib
import pickle
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.machine.engine as engine_module
from repro.experiments.common import CampaignSettings
from repro.faults.plan import FaultPlan
from repro.machine.platforms import platform
from repro.microbench.campaign import CampaignRunner
from repro.microbench.intensity import balanced_intensities
from repro.microbench.suite import fit_campaign, run_campaign
from repro.store import CampaignStore

QUICK = dict(
    replicates=1,
    target_duration=0.05,
    include_double=False,
    include_chase=False,
)


def quick_campaign(store, *, seed, faults=None, cache_refresh=False):
    return run_campaign(
        platform("pandaboard-es"),
        seed=seed,
        faults=faults,
        store=store,
        cache_refresh=cache_refresh,
        **QUICK,
    )


class TestColdWarmDifferential:
    @settings(max_examples=5, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        faulted=st.booleans(),
    )
    def test_warm_campaign_replays_bit_identical(
        self, tmp_path_factory, seed, faulted
    ):
        store = CampaignStore(
            tmp_path_factory.mktemp("cache") / f"s{seed}-{faulted}"
        )
        plan = (
            FaultPlan(seed=seed, sample_dropout=0.02, nan_rate=0.01)
            if faulted
            else None
        )
        cold = quick_campaign(store, seed=seed, faults=plan)
        assert (store.hits, store.misses) == (0, 1)
        warm = quick_campaign(store, seed=seed, faults=plan)
        assert store.hits == 1
        assert warm == cold

    def test_warm_fit_replays_bit_identical(self, tmp_path):
        store = CampaignStore(tmp_path)
        campaign = quick_campaign(None, seed=3)
        cold = fit_campaign(
            campaign, rng=np.random.default_rng(4), store=store
        )
        warm = fit_campaign(
            campaign, rng=np.random.default_rng(4), store=store
        )
        assert store.hits == 1
        assert warm.campaign == cold.campaign
        assert pickle.dumps(warm.fitted_params) == pickle.dumps(
            cold.fitted_params
        )
        assert warm.uncapped.params == cold.uncapped.params

    def test_refresh_recomputes_but_matches(self, tmp_path):
        store = CampaignStore(tmp_path)
        cold = quick_campaign(store, seed=9)
        refreshed = quick_campaign(
            store, seed=9, cache_refresh=True
        )
        # Refresh skips the lookup, so only the cold run is a miss --
        # but both runs published.
        assert store.hits == 0
        assert (store.misses, store.puts) == (1, 2)
        assert refreshed == cold

    def test_different_seed_misses(self, tmp_path):
        store = CampaignStore(tmp_path)
        quick_campaign(store, seed=1)
        quick_campaign(store, seed=2)
        assert (store.hits, store.misses) == (0, 2)


class TestRunnerInvalidation:
    def runner(self, cache_dir, **overrides):
        kwargs = dict(
            seed=2014,
            max_workers=1,
            replicates=1,
            points_per_octave=1,
            target_duration=0.05,
            include_double=False,
            include_chase=False,
            cache_dir=cache_dir,
        )
        kwargs.update(overrides)
        return CampaignRunner(("pandaboard-es",), **kwargs)

    def test_engine_version_bump_misses_warm_cache(
        self, tmp_path, monkeypatch
    ):
        """Bumping ENGINE_FINGERPRINT_VERSION must invalidate every
        cell written under the old engine (satellite regression)."""
        self.runner(tmp_path).run()
        warm = self.runner(tmp_path)
        warm.run()
        assert warm.report.cache_hits == 1
        monkeypatch.setattr(
            engine_module,
            "ENGINE_FINGERPRINT_VERSION",
            engine_module.ENGINE_FINGERPRINT_VERSION + 1,
        )
        bumped = self.runner(tmp_path)
        bumped.run()
        assert bumped.report.cache_hits == 0
        assert bumped.report.cache_misses == 1

    def test_warm_runner_matches_cold_fits(self, tmp_path):
        cold = self.runner(tmp_path)
        cold_fits = cold.run()
        assert cold.report.cache_misses == 1
        warm = self.runner(tmp_path)
        warm_fits = warm.run()
        assert warm.report.cache_hits == 1
        assert warm.report.cache_hit_rate == 1.0
        (pid,) = cold_fits
        assert warm_fits[pid].campaign == cold_fits[pid].campaign
        assert pickle.dumps(warm_fits[pid].fitted_params) == pickle.dumps(
            cold_fits[pid].fitted_params
        )

    def test_cache_refresh_requires_cache_dir(self):
        with pytest.raises(ValueError, match="cache_refresh requires"):
            CampaignRunner(("pandaboard-es",), cache_refresh=True)


class TestGuardRails:
    def test_store_rejects_preconstructed_runner(self, tmp_path):
        from repro.microbench.runner import BenchmarkRunner

        config = platform("pandaboard-es")
        with pytest.raises(ValueError, match="preconstructed runner"):
            run_campaign(
                config,
                runner=BenchmarkRunner(config),
                store=CampaignStore(tmp_path),
            )

    def test_store_rejects_custom_powermon(self, tmp_path):
        from repro.measurement.powermon import PowerMon

        with pytest.raises(ValueError, match="custom powermon"):
            run_campaign(
                platform("pandaboard-es"),
                powermon=PowerMon(),
                store=CampaignStore(tmp_path),
            )


class TestContention:
    def test_concurrent_publication_never_corrupts(self, tmp_path):
        """Many writers racing on overlapping keys: the store must end
        verifiably intact with every entry readable (last-writer-wins
        is safe because equal keys imply bit-identical payloads)."""
        store = CampaignStore(tmp_path)
        keys = [hashlib.sha1(f"k{i}".encode()).hexdigest() for i in range(4)]
        payloads = {k: ("payload", k, list(range(50))) for k in keys}

        def hammer(worker: int) -> None:
            for round_ in range(10):
                key = keys[(worker + round_) % len(keys)]
                store.put(key, payloads[key], kind="shard")

        with ThreadPoolExecutor(max_workers=8) as pool:
            for future in [pool.submit(hammer, w) for w in range(8)]:
                future.result()

        assert store.verify() == []
        for key in keys:
            assert store.get(key) == payloads[key]

    def test_pool_shards_publish_then_warm_inline_run_hits(self, tmp_path):
        """Shards writing from separate pool processes leave a store a
        later inline run can replay from."""
        def runner(workers):
            return CampaignRunner(
                ("pandaboard-es", "nuc-cpu"),
                seed=2014,
                max_workers=workers,
                replicates=1,
                points_per_octave=1,
                target_duration=0.05,
                include_double=False,
                include_chase=False,
                cache_dir=tmp_path,
            )

        cold = runner(2)
        cold_fits = cold.run()
        assert cold.report.cache_misses == 2
        assert CampaignStore(tmp_path).verify() == []
        warm = runner(1)
        warm_fits = warm.run()
        assert warm.report.cache_hits == 2
        for pid in cold_fits:
            assert warm_fits[pid].campaign == cold_fits[pid].campaign


class TestAcceptance:
    def test_warm_trajectory_campaign_is_5x_faster(self):
        from repro.trajectory.suite import cached_campaign

        result = cached_campaign(quick=True)
        assert result["fits_identical"] == 1
        assert result["cache_hits"] == 4
        assert result["cache_misses"] == 0
        assert result["cold_misses"] == 4
        assert result["warm_speedup"] >= 5.0

    def test_golden_fits_reproduce_from_warm_cache(self):
        """The warm path must land on the committed golden numbers --
        the cache can never change what a campaign computes."""
        import json
        from pathlib import Path

        golden_path = (
            Path(__file__).parent.parent / "data" / "golden_fits.json"
        )
        golden = json.loads(golden_path.read_text())
        cfg = CampaignSettings().scaled_down()
        config = platform("gtx-titan")
        grid = balanced_intensities(
            config, points_per_octave=cfg.points_per_octave
        )

        def fit_with(store):
            campaign = run_campaign(
                config,
                seed=cfg.seed,
                replicates=cfg.replicates,
                intensities=grid,
                target_duration=cfg.target_duration,
                include_double=cfg.include_double,
                include_cache=cfg.include_cache,
                include_chase=cfg.include_chase,
                faults=cfg.faults,
                max_retries=cfg.max_retries,
                store=store,
            )
            rng = np.random.default_rng(cfg.seed + 1)
            return fit_campaign(campaign, rng=rng, store=store)

        import tempfile

        with tempfile.TemporaryDirectory() as d:
            store = CampaignStore(d)
            fit_with(store)
            assert store.misses == 2  # campaign + fit.
            warm = fit_with(store)
            assert store.hits == 2
        expected = golden["fits"]["gtx-titan"]
        params = warm.capped.params
        rtol = golden["_meta"]["rtol"]
        for name in (
            "tau_flop",
            "tau_mem",
            "eps_flop",
            "eps_mem",
            "pi1",
            "delta_pi",
        ):
            assert getattr(params, name) == pytest.approx(
                expected[name], rel=rtol
            )
