"""The regression gate: threshold + absolute slack, drift notes."""

import pytest

from repro.trajectory import (
    REPORT_KIND,
    SCHEMA_VERSION,
    SUITE_CAMPAIGNS,
    compare_reports,
    environment_fingerprint,
)


def report_with(walls=None, extra=None, env=None):
    walls = walls or {}
    campaigns = {}
    for name in SUITE_CAMPAIGNS:
        campaigns[name] = {
            "wall_seconds": walls.get(name, 1.0),
            "n_runs": 100,
        }
    for name, metrics in (extra or {}).items():
        campaigns.setdefault(name, {})
        campaigns[name].update(metrics)
    return {
        "schema": SCHEMA_VERSION,
        "kind": REPORT_KIND,
        "environment": env or environment_fingerprint(),
        "campaigns": campaigns,
    }


class TestGate:
    def test_identical_reports_pass(self):
        result = compare_reports(report_with(), report_with())
        assert result.ok
        assert result.regressions == ()
        assert "no wall-time regressions" in result.describe()

    def test_regression_beyond_threshold_fails(self):
        result = compare_reports(
            report_with({"capped_sweep": 1.2}),
            report_with({"capped_sweep": 1.0}),
        )
        assert not result.ok
        (reg,) = result.regressions
        assert reg.campaign == "capped_sweep"
        assert reg.ratio == pytest.approx(1.2)
        assert "capped_sweep" in result.describe()

    def test_within_threshold_passes(self):
        result = compare_reports(
            report_with({"capped_sweep": 1.09}),
            report_with({"capped_sweep": 1.0}),
        )
        assert result.ok

    def test_speedup_passes(self):
        result = compare_reports(
            report_with({"capped_sweep": 0.5}),
            report_with({"capped_sweep": 1.0}),
        )
        assert result.ok

    def test_absolute_slack_shields_tiny_campaigns(self):
        """A 3x relative blowup on a 1 ms campaign is scheduler noise,
        not a regression: the absolute min_delta must shield it."""
        result = compare_reports(
            report_with({"uncapped_sweep": 0.003}),
            report_with({"uncapped_sweep": 0.001}),
        )
        assert result.ok

    def test_slack_does_not_hide_large_absolute_regressions(self):
        result = compare_reports(
            report_with({"pool_campaign": 2.0}),
            report_with({"pool_campaign": 1.0}),
        )
        assert not result.ok

    def test_min_delta_alone_not_enough(self):
        """A 60 ms slowdown on a 10 s campaign clears min_delta but not
        the relative threshold: still a pass."""
        result = compare_reports(
            report_with({"pool_campaign": 10.06}),
            report_with({"pool_campaign": 10.0}),
        )
        assert result.ok

    def test_missing_campaign_is_regression(self):
        current = report_with()
        del current["campaigns"]["faulted_campaign"]
        # Bypass suite validation: simulate a truncated current report.
        result = compare_reports(current, report_with())
        assert not result.ok
        (reg,) = result.regressions
        assert reg.campaign == "faulted_campaign"
        assert reg.current_seconds == float("inf")

    def test_custom_threshold(self):
        current = report_with({"capped_sweep": 1.2})
        baseline = report_with({"capped_sweep": 1.0})
        assert not compare_reports(current, baseline, threshold=0.10).ok
        assert compare_reports(current, baseline, threshold=0.25).ok

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            compare_reports(report_with(), report_with(), threshold=-0.1)
        with pytest.raises(ValueError):
            compare_reports(report_with(), report_with(), min_delta=-1.0)


class TestDriftNotes:
    def test_integer_counter_drift_noted_not_failed(self):
        current = report_with(
            extra={"faulted_campaign": {"retries": 3, "runs_failed": 2}}
        )
        baseline = report_with(
            extra={"faulted_campaign": {"retries": 1, "runs_failed": 2}}
        )
        result = compare_reports(current, baseline)
        assert result.ok
        assert any("retries: 1 -> 3" in note for note in result.notes)
        assert not any("runs_failed" in note for note in result.notes)

    def test_float_metric_drift_not_noted(self):
        current = report_with(
            extra={"capped_sweep": {"speedup_vs_scalar": 15.0}}
        )
        baseline = report_with(
            extra={"capped_sweep": {"speedup_vs_scalar": 16.0}}
        )
        result = compare_reports(current, baseline)
        assert result.ok
        assert not any("speedup" in note for note in result.notes)

    def test_environment_mismatch_noted(self):
        env = environment_fingerprint()
        other = dict(env, numpy="0.0.1")
        result = compare_reports(report_with(env=other), report_with(env=env))
        assert result.ok  # informational only
        assert any("numpy" in note for note in result.notes)

    def test_new_campaign_noted(self):
        current = report_with()
        current["campaigns"]["extra_campaign"] = {"wall_seconds": 1.0}
        result = compare_reports(current, report_with())
        assert result.ok
        assert any("extra_campaign" in note for note in result.notes)
