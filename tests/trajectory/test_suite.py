"""Suite smoke tests (quick mode) and the runner's report assembly."""

import pytest

from repro.trajectory import (
    SUITE,
    SUITE_CAMPAIGNS,
    run_suite,
    validate_report,
)
from repro.trajectory.suite import (
    cached_campaign,
    capped_sweep,
    uncapped_sweep,
)


class TestSuiteShape:
    def test_suite_covers_schema_campaigns(self):
        assert tuple(SUITE) == SUITE_CAMPAIGNS


class TestSweeps:
    def test_uncapped_sweep_never_throttles(self):
        metrics = uncapped_sweep(quick=True)
        assert metrics["n_throttled"] == 0
        assert metrics["n_runs"] == 100
        assert metrics["wall_seconds"] > 0
        assert metrics["runs_per_second"] > 0

    def test_capped_sweep_throttles_heavily_and_reports_speedup(self):
        metrics = capped_sweep(quick=True)
        # The grid is chosen so roughly half the points throttle --
        # the batch governor is the hot path being timed.
        assert metrics["n_throttled"] > metrics["n_runs"] // 3
        assert metrics["scalar_seconds"] > metrics["wall_seconds"]
        assert metrics["speedup_vs_scalar"] == pytest.approx(
            metrics["scalar_seconds"] / metrics["wall_seconds"]
        )


class TestCachedCampaign:
    def test_cold_then_warm_metrics(self):
        metrics = cached_campaign(quick=True)
        # All four shards miss cold, hit warm, and replay identically.
        assert metrics["cold_misses"] == 4
        assert metrics["cache_hits"] == 4
        assert metrics["cache_misses"] == 0
        assert metrics["cache_stale"] == 0
        assert metrics["fits_identical"] == 1
        assert metrics["cold_seconds"] > metrics["wall_seconds"] > 0
        assert metrics["warm_speedup"] == pytest.approx(
            metrics["cold_seconds"] / metrics["wall_seconds"]
        )


class TestRunSuite:
    def test_quick_suite_produces_valid_report(self):
        report = run_suite(quick=True)
        validate_report(report)
        assert set(report["campaigns"]) == set(SUITE_CAMPAIGNS)
        for name, metrics in report["campaigns"].items():
            assert metrics["wall_seconds"] > 0, name

    def test_progress_callback_sees_every_campaign(self):
        seen = []
        run_suite(quick=True, progress=lambda name, m: seen.append(name))
        assert seen == list(SUITE_CAMPAIGNS)
