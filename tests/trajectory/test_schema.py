"""Report schema: validation, environment fingerprint, round-trip."""

import json

import pytest

from repro.trajectory import (
    REPORT_KIND,
    SCHEMA_VERSION,
    SUITE_CAMPAIGNS,
    environment_fingerprint,
    load_report,
    validate_report,
    write_report,
)


def minimal_report():
    return {
        "schema": SCHEMA_VERSION,
        "kind": REPORT_KIND,
        "environment": environment_fingerprint(),
        "campaigns": {
            name: {"wall_seconds": 0.1, "n_runs": 10}
            for name in SUITE_CAMPAIGNS
        },
    }


class TestFingerprint:
    def test_has_all_fields(self):
        env = environment_fingerprint()
        assert set(env) == {
            "python", "numpy", "platform", "machine", "cpu_count",
        }
        assert isinstance(env["cpu_count"], int)
        assert env["cpu_count"] >= 1

    def test_json_serialisable(self):
        json.dumps(environment_fingerprint())


class TestValidate:
    def test_minimal_report_valid(self):
        validate_report(minimal_report())

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError, match="must be an object"):
            validate_report([1, 2])

    def test_rejects_wrong_schema_version(self):
        report = minimal_report()
        report["schema"] = 99
        with pytest.raises(ValueError, match="schema version"):
            validate_report(report)

    def test_rejects_wrong_kind(self):
        report = minimal_report()
        report["kind"] = "something_else"
        with pytest.raises(ValueError, match="kind"):
            validate_report(report)

    def test_rejects_missing_environment_field(self):
        report = minimal_report()
        del report["environment"]["numpy"]
        with pytest.raises(ValueError, match="numpy"):
            validate_report(report)

    def test_rejects_missing_suite_campaign(self):
        report = minimal_report()
        del report["campaigns"]["capped_sweep"]
        with pytest.raises(ValueError, match="capped_sweep"):
            validate_report(report)

    def test_rejects_missing_wall_seconds(self):
        report = minimal_report()
        del report["campaigns"]["pool_campaign"]["wall_seconds"]
        with pytest.raises(ValueError, match="wall_seconds"):
            validate_report(report)

    def test_rejects_non_numeric_metric(self):
        report = minimal_report()
        report["campaigns"]["capped_sweep"]["n_runs"] = "many"
        with pytest.raises(ValueError, match="must be a number"):
            validate_report(report)

    def test_rejects_bool_metric(self):
        report = minimal_report()
        report["campaigns"]["capped_sweep"]["n_throttled"] = True
        with pytest.raises(ValueError, match="must be a number"):
            validate_report(report)

    def test_rejects_non_finite_metric(self):
        report = minimal_report()
        report["campaigns"]["uncapped_sweep"]["runs_per_second"] = float(
            "inf"
        )
        with pytest.raises(ValueError, match="finite"):
            validate_report(report)

    def test_rejects_negative_wall_seconds(self):
        report = minimal_report()
        report["campaigns"]["uncapped_sweep"]["wall_seconds"] = -1.0
        with pytest.raises(ValueError, match="non-negative"):
            validate_report(report)


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "BENCH_campaign.json"
        write_report(path, minimal_report())
        loaded = load_report(path)
        assert loaded["schema"] == SCHEMA_VERSION
        assert set(loaded["campaigns"]) == set(SUITE_CAMPAIGNS)

    def test_output_is_stable(self, tmp_path):
        """Same report, same bytes: the committed file must not churn."""
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        write_report(a, minimal_report())
        write_report(b, minimal_report())
        assert a.read_bytes() == b.read_bytes()

    def test_floats_rounded_on_disk(self, tmp_path):
        report = minimal_report()
        report["campaigns"]["uncapped_sweep"]["wall_seconds"] = (
            0.12345678901234567
        )
        path = tmp_path / "r.json"
        write_report(path, report)
        assert "0.123457" in path.read_text()

    def test_partial_write_never_replaces_baseline(
        self, tmp_path, monkeypatch
    ):
        """A crash mid-write must leave the committed baseline intact
        (the write goes through a temp file + ``os.replace``)."""
        import repro.store.atomic as atomic_module

        path = tmp_path / "BENCH_campaign.json"
        write_report(path, minimal_report())
        baseline = path.read_bytes()

        def explode(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(atomic_module.os, "replace", explode)
        broken = minimal_report()
        broken["campaigns"]["uncapped_sweep"]["wall_seconds"] = 999.0
        with pytest.raises(OSError, match="disk full"):
            write_report(path, broken)
        assert path.read_bytes() == baseline
        # No stray temp files alongside the baseline either.
        assert list(tmp_path.iterdir()) == [path]

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not JSON"):
            load_report(path)

    def test_load_rejects_invalid_report(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            load_report(path)

    def test_write_rejects_invalid_report(self, tmp_path):
        with pytest.raises(ValueError):
            write_report(tmp_path / "r.json", {"schema": 1})
