"""Unit tests for repro.machine.trace and repro.machine.memory."""

import numpy as np
import pytest

from repro.machine.cache import CacheGeometry, CacheHierarchySim
from repro.machine.memory import Prefetcher, chase_counts, serving_level, stream_traffic
from repro.machine.platforms import platform
from repro.machine.trace import (
    chase_permutation,
    pointer_chase_trace,
    stream_trace,
    strided_trace,
)


class TestStreamTrace:
    def test_addresses_and_count(self):
        addrs = stream_trace(256, 64)
        assert addrs.tolist() == [0, 64, 128, 192]

    def test_passes_tile(self):
        addrs = stream_trace(128, 64, passes=3)
        assert len(addrs) == 6
        assert addrs[2] == 0

    def test_rejects_too_small(self):
        with pytest.raises(ValueError):
            stream_trace(32, 64)
        with pytest.raises(ValueError):
            stream_trace(0, 64)


class TestStridedTrace:
    def test_stride(self):
        addrs = strided_trace(512, 128, 64)
        assert addrs.tolist() == [0, 128, 256, 384]

    def test_rejects_misaligned_stride(self):
        with pytest.raises(ValueError, match="multiple"):
            strided_trace(512, 96, 64)


class TestChasePermutation:
    def test_single_cycle_visits_everything(self, rng):
        n = 257
        perm = chase_permutation(rng, n)
        seen = set()
        slot = 0
        for _ in range(n):
            seen.add(slot)
            slot = perm[slot]
        assert slot == 0
        assert len(seen) == n

    def test_is_permutation(self, rng):
        perm = chase_permutation(rng, 100)
        assert sorted(perm.tolist()) == list(range(100))

    def test_no_fixed_points(self, rng):
        # A single cycle of length >= 2 has no self-loops.
        perm = chase_permutation(rng, 64)
        assert np.all(perm != np.arange(64))

    def test_rejects_tiny(self, rng):
        with pytest.raises(ValueError):
            chase_permutation(rng, 1)


class TestPointerChaseTrace:
    def test_line_aligned(self, rng):
        addrs = pointer_chase_trace(rng, 4096, 64, 100)
        assert np.all(addrs % 64 == 0)
        assert np.all(addrs < 4096)

    def test_covers_working_set(self, rng):
        addrs = pointer_chase_trace(rng, 4096, 64, 64)
        assert len(set(addrs.tolist())) == 64  # full cycle, no repeats

    def test_dependent_chain_deterministic_per_seed(self):
        a = pointer_chase_trace(np.random.default_rng(1), 4096, 64, 50)
        b = pointer_chase_trace(np.random.default_rng(1), 4096, 64, 50)
        assert np.array_equal(a, b)

    def test_rejects_invalid(self, rng):
        with pytest.raises(ValueError):
            pointer_chase_trace(rng, 64, 64, 10)
        with pytest.raises(ValueError):
            pointer_chase_trace(rng, 4096, 64, 0)


class TestServingLevel:
    def test_levels_by_working_set(self):
        cfg = platform("desktop-cpu")  # L1 32 KiB, L2 256 KiB
        assert serving_level(cfg, 16 * 1024) == "L1"
        assert serving_level(cfg, 128 * 1024) == "L2"
        assert serving_level(cfg, 8 * 1024 * 1024) == "dram"

    def test_platform_without_caches(self):
        cfg = platform("nuc-gpu")
        assert serving_level(cfg, 1024) == "dram"

    def test_stream_traffic_charges_one_level(self):
        cfg = platform("desktop-cpu")
        traffic = stream_traffic(cfg, 16 * 1024, 1e6)
        assert traffic == {"L1": 1e6}

    def test_stream_traffic_rejects_zero(self):
        cfg = platform("desktop-cpu")
        with pytest.raises(ValueError):
            stream_traffic(cfg, 1024, 0.0)

    def test_chase_counts(self):
        cfg = platform("desktop-cpu")
        level, n = chase_counts(cfg, 64 * 1024 * 1024, 1e5)
        assert level == "dram"
        assert n == 1e5


class TestPrefetcher:
    def make(self):
        h = CacheHierarchySim([CacheGeometry("L1", 4096, 64, 8)])
        return Prefetcher(h, degree=2), h

    def test_stream_reaches_high_hit_rate(self):
        pf, _ = self.make()
        addrs = stream_trace(1 << 16, 64)  # beyond the cache capacity
        stats = pf.run_trace(addrs)
        assert stats.hit_rate > 0.9
        assert stats.prefetches_issued > 0

    def test_chase_gains_nothing(self, rng):
        pf, _ = self.make()
        addrs = pointer_chase_trace(rng, 1 << 16, 64, 500)
        stats = pf.run_trace(addrs)
        assert stats.hit_rate < 0.1

    def test_rejects_bad_degree(self):
        h = CacheHierarchySim([CacheGeometry("L1", 4096, 64, 8)])
        with pytest.raises(ValueError):
            Prefetcher(h, degree=0)

    def test_hit_rate_requires_accesses(self):
        pf, _ = self.make()
        stats = pf.run_trace(np.array([], dtype=np.int64))
        with pytest.raises(ValueError, match="no demand accesses"):
            stats.hit_rate
