"""Unit tests for repro.machine.governor."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.governor import GovernorSettings, run_governor


class TestSettings:
    def test_defaults_valid(self):
        GovernorSettings()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"period": 0.0},
            {"hysteresis": 1.0},
            {"hysteresis": -0.1},
            {"gain": 0.0},
            {"gain": 1.0},
            {"f_min": 0.0},
            {"f_min": 1.5},
            {"max_segments": 0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            GovernorSettings(**kwargs)


class TestUnthrottled:
    def test_demand_below_cap_runs_full_speed(self):
        result = run_governor(0.5, demand_power=10.0, cap=20.0)
        assert not result.throttled
        assert result.wall_time == pytest.approx(0.5)
        assert result.mean_frequency == pytest.approx(1.0)

    def test_demand_exactly_at_cap_unthrottled(self):
        result = run_governor(0.5, demand_power=20.0, cap=20.0)
        assert not result.throttled

    def test_infinite_cap(self):
        result = run_governor(1.0, demand_power=1e6, cap=math.inf)
        assert not result.throttled

    def test_zero_demand(self):
        result = run_governor(1.0, demand_power=0.0, cap=5.0)
        assert not result.throttled


class TestThrottled:
    def test_wall_time_extended(self):
        result = run_governor(0.25, demand_power=30.0, cap=20.0)
        assert result.throttled
        # Ideal throttled time = work / (cap/demand) = 0.375 s.
        assert result.wall_time == pytest.approx(0.375, rel=0.1)

    def test_average_power_respects_cap(self):
        result = run_governor(0.25, demand_power=30.0, cap=20.0)
        powers = result.frequencies * 30.0
        avg = float(np.dot(result.durations, powers) / result.wall_time)
        # One-sided enforcement settles at or below the cap (a short
        # initial full-power ramp is allowed).
        assert avg <= 20.0 * 1.05

    def test_instantaneous_power_bounded_after_ramp(self):
        result = run_governor(0.25, demand_power=30.0, cap=20.0)
        powers = result.frequencies * 30.0
        # After the ramp (first few control periods) power stays at or
        # below the cap.
        assert np.all(powers[5:] <= 20.0 + 1e-9)

    def test_total_progress_conserved(self):
        work = 0.2
        result = run_governor(work, demand_power=50.0, cap=10.0)
        progress = float(np.dot(result.durations, result.frequencies))
        assert progress == pytest.approx(work, rel=1e-9)

    def test_oscillation_present(self):
        result = run_governor(0.25, demand_power=30.0, cap=20.0)
        # The control loop hunts: more than two distinct frequencies.
        assert len(set(np.round(result.frequencies, 6))) > 2

    def test_deep_throttle_hits_floor(self):
        settings = GovernorSettings(f_min=0.5)
        result = run_governor(0.01, demand_power=1000.0, cap=1.0, settings=settings)
        assert np.min(result.frequencies) >= 0.5

    def test_segment_budget_fallback(self):
        settings = GovernorSettings(max_segments=10)
        result = run_governor(1.0, demand_power=30.0, cap=20.0, settings=settings)
        # Work still completes despite the tiny segment budget.
        progress = float(np.dot(result.durations, result.frequencies))
        assert progress == pytest.approx(1.0, rel=1e-9)


class TestDegenerateTail:
    def test_sub_resolution_tail_dropped(self):
        """Regression: a residual below the trace timeline's FP
        resolution used to emit a zero-width trailing segment whose
        edge collapsed onto the previous one, making PowerTrace reject
        the schedule ("edges must be strictly increasing")."""
        settings = GovernorSettings(period=1e-3, f_min=1.0)
        result = run_governor(
            1.0000000000000009, demand_power=2.0, cap=1.0, settings=settings
        )
        # The schedule must build a valid trace...
        from repro.machine.power import PowerTrace

        trace = PowerTrace.from_durations(
            result.durations, result.frequencies
        )
        # ...with every segment a full control period: the degenerate
        # tail (work residual 9e-16 / f=1, far below the ~1.0 s
        # timeline's ulp) is dropped, not emitted.
        assert np.all(result.durations == settings.period)
        assert trace.duration == pytest.approx(1.0, rel=1e-9)

    def test_normal_tail_still_emitted(self):
        settings = GovernorSettings(period=1e-3)
        result = run_governor(
            0.0015, demand_power=10.0, cap=20.0, settings=settings
        )
        assert not result.throttled  # sanity: below cap, one segment
        result = run_governor(
            0.0015, demand_power=30.0, cap=20.0, settings=settings
        )
        # 1.5 periods of work: one full segment plus a real tail.
        assert len(result.durations) == 2
        assert result.durations[-1] > 0


class TestValidation:
    def test_rejects_nonpositive_work(self):
        with pytest.raises(ValueError):
            run_governor(0.0, 1.0, 1.0)

    def test_rejects_negative_demand(self):
        with pytest.raises(ValueError):
            run_governor(1.0, -1.0, 1.0)

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            run_governor(1.0, 1.0, 0.0)


@given(
    work=st.floats(min_value=0.01, max_value=1.0),
    demand=st.floats(min_value=0.1, max_value=500.0),
    cap=st.floats(min_value=0.1, max_value=500.0),
)
@settings(max_examples=100, deadline=None)
def test_progress_always_conserved(work, demand, cap):
    result = run_governor(work, demand, cap)
    progress = float(np.dot(result.durations, result.frequencies))
    assert progress == pytest.approx(work, rel=1e-6)
    assert result.wall_time >= work * (1 - 1e-9)


@given(
    work=st.floats(min_value=0.1, max_value=0.5),
    ratio=st.floats(min_value=1.05, max_value=20.0),
)
@settings(max_examples=100, deadline=None)
def test_throttled_time_close_to_ideal(work, ratio):
    """Governed wall time lands near the ideal energy/cap time once the
    run is long enough to amortise the initial full-speed ramp."""
    cap = 10.0
    demand = cap * ratio
    result = run_governor(work, demand, cap)
    ideal = work * ratio  # time to push work*demand Joules at cap Watts
    # The ramp can only make the run *faster* than ideal, never slower
    # beyond the control-loop undershoot.
    assert result.wall_time <= ideal * 1.15
    assert result.wall_time >= min(ideal, work) * 0.99
    assert result.wall_time == pytest.approx(ideal, rel=0.15)
