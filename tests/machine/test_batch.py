"""run_batch vs run: the batch path must agree with the scalar oracle.

The vectorised batch engine is only trustworthy if, with noise off,
``Engine.run_batch`` reproduces ``Engine.run`` *bit-for-bit* per
kernel -- not approximately, exactly.  The property tests below sweep
intensity grids wide enough to cross each platform's throttled region
on several Table I platforms (capped and uncapped, with and without
utilisation scaling), so both the pure vectorised path and the
governor fallback are exercised.
"""

import numpy as np
import pytest

from repro.machine.engine import BatchResult, Engine
from repro.machine.kernel import DRAM, KernelSpec
from repro.machine.platforms import platform

# Capped GPU, capped manycore, uncapped GPU with utilisation scaling,
# capped desktop CPU: together they cover every deterministic branch.
PLATFORMS = ["gtx-titan", "xeon-phi", "arndale-gpu", "desktop-cpu"]


def sweep_kernels(config, n_points=40):
    """An intensity sweep crossing the platform's cap region."""
    grid = np.geomspace(1.0 / 8.0, 512.0, n_points)
    Q = 1e8
    return [
        KernelSpec(
            name=f"sweep-{i}", flops=float(x) * Q, traffic={DRAM: Q}
        )
        for i, x in enumerate(grid)
    ]


class TestNoiseFreeEquivalence:
    @pytest.mark.parametrize("platform_id", PLATFORMS)
    def test_bit_for_bit_equal_to_scalar(self, platform_id):
        config = platform(platform_id)
        engine = Engine(config)  # rng=None: noise off
        kernels = sweep_kernels(config)
        batch = engine.run_batch(kernels)
        scalar = [engine.run(kernel) for kernel in kernels]
        # Element-wise exact equality, not approx: both paths must run
        # the same arithmetic in the same order.
        assert batch.wall_times.tolist() == [r.wall_time for r in scalar]
        assert batch.energies.tolist() == [r.true_energy for r in scalar]
        assert batch.ideal_times.tolist() == [r.ideal_time for r in scalar]
        assert batch.throttled.tolist() == [r.throttled for r in scalar]

    @pytest.mark.parametrize("platform_id", ["gtx-titan", "desktop-cpu"])
    def test_sweep_crosses_the_cap_region(self, platform_id):
        """The grids above genuinely exercise both branches."""
        config = platform(platform_id)
        batch = Engine(config).run_batch(sweep_kernels(config))
        assert 0 < batch.n_throttled < len(batch)

    def test_traces_equal_too(self):
        config = platform("gtx-titan")
        engine = Engine(config)
        kernels = sweep_kernels(config, n_points=12)
        batch = engine.run_batch(kernels)
        for i, kernel in enumerate(kernels):
            ref = engine.run(kernel).trace
            got = batch.trace(i)
            assert got.edges.tolist() == ref.edges.tolist()
            assert got.values.tolist() == ref.values.tolist()

    def test_mixed_precision_batch(self):
        config = platform("desktop-cpu")  # has double-precision params
        engine = Engine(config)
        Q = 1e8
        kernels = [
            KernelSpec(
                name=f"k{i}",
                flops=8.0 * Q,
                traffic={DRAM: Q},
                precision="double" if i % 2 else "single",
            )
            for i in range(8)
        ]
        batch = engine.run_batch(kernels)
        scalar = [engine.run(kernel) for kernel in kernels]
        assert batch.wall_times.tolist() == [r.wall_time for r in scalar]
        assert batch.energies.tolist() == [r.true_energy for r in scalar]
        # Double flops really are costed differently.
        assert batch.wall_times[0] != batch.wall_times[1]

    def test_random_access_batch(self):
        config = platform("gtx-titan")  # has random-access parameters
        engine = Engine(config)
        kernels = [
            KernelSpec(
                name=f"chase{i}",
                traffic={DRAM: 1e7},
                random_accesses=10.0 ** i,
            )
            for i in range(4, 8)
        ]
        batch = engine.run_batch(kernels)
        scalar = [engine.run(kernel) for kernel in kernels]
        assert batch.wall_times.tolist() == [r.wall_time for r in scalar]
        assert batch.energies.tolist() == [r.true_energy for r in scalar]

    def test_cache_level_batch(self):
        config = platform("desktop-cpu")
        engine = Engine(config)
        level = config.truth.caches[0].name
        kernels = [
            KernelSpec(name=f"c{i}", flops=1e8, traffic={level: 1e8 * i})
            for i in range(1, 5)
        ]
        batch = engine.run_batch(kernels)
        scalar = [engine.run(kernel) for kernel in kernels]
        assert batch.wall_times.tolist() == [r.wall_time for r in scalar]


class TestNoiseFallback:
    def test_noisy_batch_equals_fresh_sequential_runs(self):
        config = platform("gtx-titan")
        kernels = sweep_kernels(config, n_points=10)
        batch = Engine(config, rng=np.random.default_rng(42)).run_batch(kernels)
        reference = Engine(config, rng=np.random.default_rng(42))
        scalar = [reference.run(kernel) for kernel in kernels]
        # Same seed, same consumption order -> identical draws.
        assert batch.wall_times.tolist() == [r.wall_time for r in scalar]
        assert batch.energies.tolist() == [r.true_energy for r in scalar]

    def test_noisy_batch_keeps_explicit_traces(self):
        config = platform("gtx-titan")
        kernels = sweep_kernels(config, n_points=4)
        batch = Engine(config, rng=np.random.default_rng(0)).run_batch(kernels)
        assert set(batch.traces) == set(range(len(kernels)))


class TestBatchResultApi:
    def test_empty_batch_raises(self):
        engine = Engine(platform("gtx-titan"))
        with pytest.raises(ValueError, match="at least one kernel"):
            engine.run_batch([])

    def test_results_round_trip(self):
        config = platform("xeon-phi")
        engine = Engine(config)
        kernels = sweep_kernels(config, n_points=6)
        batch = engine.run_batch(kernels)
        results = batch.results()
        assert len(results) == len(batch) == 6
        for i, result in enumerate(batch):
            assert result.kernel is kernels[i]
            assert result.wall_time == float(batch.wall_times[i])
            assert result.true_energy == pytest.approx(
                float(batch.energies[i])
            )

    def test_avg_powers_consistent(self):
        config = platform("gtx-titan")
        batch = Engine(config).run_batch(sweep_kernels(config, n_points=8))
        assert batch.avg_powers.tolist() == (
            batch.energies / batch.wall_times
        ).tolist()

    def test_from_results_wraps_scalar_runs(self):
        config = platform("gtx-titan")
        engine = Engine(config)
        kernels = tuple(sweep_kernels(config, n_points=3))
        scalar = [engine.run(kernel) for kernel in kernels]
        wrapped = BatchResult.from_results(kernels, scalar)
        assert wrapped.wall_times.tolist() == [r.wall_time for r in scalar]
        assert wrapped.trace(0).values.tolist() == (
            scalar[0].trace.values.tolist()
        )

    def test_validation_names_offending_kernel(self):
        config = platform("nuc-gpu")  # no random-access parameters
        engine = Engine(config)
        good = KernelSpec(name="good", flops=1e8, traffic={DRAM: 1e7})
        bad = KernelSpec(name="chase-bad", random_accesses=100.0)
        with pytest.raises(ValueError, match="chase-bad"):
            engine.run_batch([good, bad])
