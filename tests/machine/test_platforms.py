"""Tests for the platform registry -- including the crucial check that
the simulator's ground truth matches the paper's Table I transcription
in repro.experiments.paper_reference (two independent encodings)."""

import math

import pytest

from repro.experiments.paper_reference import TABLE1
from repro.machine.platforms import PLATFORM_IDS, all_params, all_platforms, params, platform
from repro.units import gbps, gflops, maccs, nJ, pJ


class TestRegistry:
    def test_twelve_platforms(self):
        assert len(PLATFORM_IDS) == 12

    def test_lookup_by_id_and_name(self):
        assert platform("gtx-titan").name == "GTX Titan"
        assert platform("GTX Titan").name == "GTX Titan"

    def test_unknown_platform(self):
        with pytest.raises(KeyError, match="unknown platform"):
            platform("gtx-9090")

    def test_all_params_shortcut(self):
        assert params("xeon-phi") is platform("xeon-phi").truth
        assert set(all_params()) == set(PLATFORM_IDS)

    def test_row_order_matches_table(self):
        assert list(all_platforms()) == list(PLATFORM_IDS)
        assert list(TABLE1) == list(PLATFORM_IDS)

    def test_kinds(self):
        kinds = {pid: cfg.kind for pid, cfg in all_platforms().items()}
        assert kinds["gtx-titan"] == "gpu"
        assert kinds["xeon-phi"] == "manycore"
        assert kinds["desktop-cpu"] == "cpu"


@pytest.mark.parametrize("pid", PLATFORM_IDS)
class TestGroundTruthMatchesPaper:
    """Every simulator constant equals the independent Table I record."""

    def test_core_parameters(self, pid):
        cfg = platform(pid)
        row = TABLE1[pid]
        truth = cfg.truth
        assert truth.pi1 == pytest.approx(row.pi1_w)
        assert truth.delta_pi == pytest.approx(row.delta_pi_w)
        assert truth.eps_flop == pytest.approx(pJ(row.eps_s_pj))
        assert truth.eps_mem == pytest.approx(pJ(row.eps_mem_pj))
        assert truth.peak_flops == pytest.approx(gflops(row.sust_single_gflops))
        assert truth.peak_bandwidth == pytest.approx(gbps(row.sust_bw_gbps))

    def test_double_precision(self, pid):
        truth = platform(pid).truth
        row = TABLE1[pid]
        if row.eps_d_pj is None:
            assert truth.eps_flop_double is None
        else:
            assert truth.eps_flop_double == pytest.approx(pJ(row.eps_d_pj))
            assert 1.0 / truth.tau_flop_double == pytest.approx(
                gflops(row.sust_double_gflops)
            )

    def test_vendor_peaks(self, pid):
        cfg = platform(pid)
        row = TABLE1[pid]
        assert cfg.vendor.flops_single == pytest.approx(
            gflops(row.vendor_single_gflops)
        )
        assert cfg.vendor.bandwidth == pytest.approx(gbps(row.vendor_bw_gbps))

    def test_cache_levels(self, pid):
        truth = platform(pid).truth
        row = TABLE1[pid]
        caches = truth.cache_by_name
        if row.eps_l1_pj is None:
            assert "L1" not in caches
        else:
            assert caches["L1"].eps_byte == pytest.approx(pJ(row.eps_l1_pj))
            assert caches["L1"].bandwidth == pytest.approx(gbps(row.sust_l1_gbps))
        if row.eps_l2_pj is None:
            assert "L2" not in caches
        else:
            assert caches["L2"].eps_byte == pytest.approx(pJ(row.eps_l2_pj))
            assert caches["L2"].bandwidth == pytest.approx(gbps(row.sust_l2_gbps))

    def test_random_access(self, pid):
        truth = platform(pid).truth
        row = TABLE1[pid]
        if row.eps_rand_nj is None:
            assert truth.random is None
        else:
            assert truth.random.eps_access == pytest.approx(nJ(row.eps_rand_nj))
            assert truth.random.rate == pytest.approx(maccs(row.sust_rand_maccs))

    def test_idle_power(self, pid):
        cfg = platform(pid)
        row = TABLE1[pid]
        assert cfg.idle_power == pytest.approx(row.idle_w)
        assert (cfg.truth.pi1 < cfg.idle_power) == row.pi1_below_idle

    def test_sustained_at_most_vendor_claims(self, pid):
        cfg = platform(pid)
        assert cfg.sustained_fraction_flops <= 1.0 + 1e-9
        assert cfg.sustained_fraction_bandwidth <= 1.0 + 1e-9


class TestStructuralProperties:
    def test_cache_energy_ordering(self, platforms):
        """eps_L1 <= eps_L2 on every platform modelling both (V-B)."""
        for cfg in platforms.values():
            caches = cfg.truth.cache_by_name
            if "L1" in caches and "L2" in caches:
                assert caches["L1"].eps_byte <= caches["L2"].eps_byte

    def test_cache_bandwidth_ordering(self, platforms):
        """Inner levels are faster."""
        for cfg in platforms.values():
            caches = cfg.truth.cache_by_name
            if "L1" in caches and "L2" in caches:
                assert caches["L1"].bandwidth >= caches["L2"].bandwidth

    def test_dram_resident_working_set_beyond_caches(self, platforms):
        for cfg in platforms.values():
            largest = cfg.largest_cache_capacity
            if largest is not None:
                assert cfg.dram_resident_working_set >= 8 * largest

    def test_double_no_faster_than_single(self, platforms):
        for cfg in platforms.values():
            truth = cfg.truth
            if truth.tau_flop_double is not None:
                assert truth.tau_flop_double >= truth.tau_flop
                assert truth.eps_flop_double >= truth.eps_flop

    def test_max_model_power_positive(self, platforms):
        for cfg in platforms.values():
            assert cfg.max_model_power > 0
            assert math.isfinite(cfg.max_model_power)

    def test_describe_mentions_name(self, platforms):
        for cfg in platforms.values():
            assert cfg.name in cfg.describe()
