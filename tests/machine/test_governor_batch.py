"""Differential tests: ``run_governor_batch`` vs scalar ``run_governor``.

The batch governor's contract is *bit-identity*: for every kernel in
the batch, the lockstep loop must return exactly the arrays the scalar
loop returns -- same segment count, same IEEE-754 bits in every
duration and frequency.  These tests assert that with
``np.array_equal`` (no tolerances) across randomly sampled workloads,
plus the named edge cases: segment-budget exhaustion, exact work
consumption, degenerate sub-resolution tails, mixed
throttled/unthrottled batches, and per-kernel cap arrays.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.governor import (
    GovernorSettings,
    run_governor,
    run_governor_batch,
)
from repro.machine.power import PowerTrace


def assert_batch_matches_scalar(work, demand, cap, gov=None):
    """Every lane of the batch result equals its scalar oracle, bitwise."""
    work = np.asarray(work, dtype=float)
    demand = np.asarray(demand, dtype=float)
    cap_arr = np.broadcast_to(np.asarray(cap, dtype=float), work.shape)
    batch = run_governor_batch(work, demand, cap, gov)
    assert len(batch) == len(work)
    for i in range(len(work)):
        scalar = run_governor(
            float(work[i]), float(demand[i]), float(cap_arr[i]), gov
        )
        assert np.array_equal(batch.durations[i], scalar.durations), i
        assert np.array_equal(batch.frequencies[i], scalar.frequencies), i
        assert bool(batch.throttled[i]) == scalar.throttled, i
        # The precomputed trace geometry must equal an actually-built
        # trace, bit for bit (same cumsum/diff chain).
        trace = PowerTrace.from_durations(
            scalar.durations, scalar.frequencies
        )
        assert batch.trace_wall_times[i] == trace.duration, i
        assert np.array_equal(
            batch.trace_segment_durations[i], trace.segment_durations
        ), i


class TestDifferential:
    def test_mixed_throttled_and_unthrottled(self):
        work = np.array([0.5, 0.25, 0.01, 1.0, 0.002])
        demand = np.array([10.0, 30.0, 1000.0, 0.0, 25.0])
        assert_batch_matches_scalar(work, demand, 20.0)

    def test_single_kernel(self):
        assert_batch_matches_scalar([0.25], [30.0], 20.0)

    def test_per_kernel_cap_array(self):
        work = np.array([0.1, 0.1, 0.1])
        demand = np.array([30.0, 30.0, 30.0])
        caps = np.array([40.0, 20.0, 5.0])
        assert_batch_matches_scalar(work, demand, caps)

    def test_max_segments_exhaustion_tail(self):
        # A 10-segment budget cannot cover 1 s of throttled work; both
        # paths must append the steady-state fallback tail.
        gov = GovernorSettings(max_segments=10)
        work = np.array([1.0, 2.0, 0.003])
        demand = np.array([30.0, 50.0, 30.0])
        assert_batch_matches_scalar(work, demand, 20.0, gov)

    def test_exact_consumption_edge(self):
        # work an exact multiple of period * f=1: the finish test fires
        # with remaining == progress and the tail is a full segment.
        gov = GovernorSettings(period=1e-3)
        work = np.array([5e-3, 1e-3])
        demand = np.array([30.0, 30.0])
        assert_batch_matches_scalar(work, demand, 20.0, gov)

    def test_degenerate_tail_lane(self):
        # The scalar loop drops a trailing segment whose residual is
        # below the timeline's floating-point resolution; the batch
        # path must drop the same lane's tail.
        gov = GovernorSettings(period=1e-3, f_min=1.0)
        work = np.array([1.0000000000000009, 0.25])
        demand = np.array([2.0, 2.0])
        assert_batch_matches_scalar(work, demand, 1.0, gov)

    def test_deep_throttle_frequency_floor(self):
        gov = GovernorSettings(f_min=0.5)
        work = np.array([0.01, 0.02])
        demand = np.array([1000.0, 500.0])
        assert_batch_matches_scalar(work, demand, 1.0, gov)


class TestValidation:
    def test_rejects_2d_work(self):
        with pytest.raises(ValueError):
            run_governor_batch(np.ones((2, 2)), np.ones((2, 2)), 1.0)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            run_governor_batch(np.ones(3), np.ones(2), 1.0)

    def test_rejects_nonpositive_work(self):
        with pytest.raises(ValueError):
            run_governor_batch([1.0, 0.0], [1.0, 1.0], 1.0)

    def test_rejects_negative_demand(self):
        with pytest.raises(ValueError):
            run_governor_batch([1.0], [-1.0], 1.0)

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            run_governor_batch([1.0], [1.0], 0.0)

    def test_empty_batch(self):
        batch = run_governor_batch([], [], 1.0)
        assert len(batch) == 0
        assert batch.trace_wall_times.shape == (0,)


class TestResultAccessors:
    def test_result_and_results_roundtrip(self):
        work = np.array([0.5, 0.1])
        demand = np.array([10.0, 30.0])
        batch = run_governor_batch(work, demand, 20.0)
        individual = batch.results()
        assert len(individual) == 2
        for i, res in enumerate(individual):
            assert np.array_equal(res.durations, batch.durations[i])
            assert res.throttled == bool(batch.throttled[i])


@given(
    data=st.data(),
    n=st.integers(min_value=1, max_value=8),
    cap=st.floats(min_value=0.1, max_value=500.0),
)
@settings(max_examples=150, deadline=None)
def test_batch_bit_identical_to_scalar(data, n, cap):
    """Sampled workloads: the batch path is the scalar path, bitwise."""
    work = np.array(
        [
            data.draw(st.floats(min_value=1e-4, max_value=1.0))
            for _ in range(n)
        ]
    )
    demand = np.array(
        [
            data.draw(st.floats(min_value=0.0, max_value=500.0))
            for _ in range(n)
        ]
    )
    assert_batch_matches_scalar(work, demand, cap)


@given(
    work=st.floats(min_value=1e-3, max_value=0.05),
    ratio=st.floats(min_value=1.05, max_value=30.0),
    max_segments=st.integers(min_value=1, max_value=40),
)
@settings(max_examples=100, deadline=None)
def test_batch_matches_scalar_under_tiny_segment_budgets(
    work, ratio, max_segments
):
    """Budget exhaustion at every boundary: 1-segment budgets, budgets
    that expire exactly at the finish interval, and everything between
    must take the identical scalar fallback path."""
    gov = GovernorSettings(max_segments=max_segments)
    cap = 10.0
    assert_batch_matches_scalar([work], [cap * ratio], cap, gov)
