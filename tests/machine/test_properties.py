"""Property-based tests (hypothesis) on the machine substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.cache import CacheGeometry, CacheHierarchySim, CacheLevelSim
from repro.machine.noise import insert_stalls
from repro.machine.power import PowerTrace
from repro.machine.trace import chase_permutation


# ---------------------------------------------------------------------------
# PowerTrace algebra.
# ---------------------------------------------------------------------------

@st.composite
def traces(draw):
    n = draw(st.integers(min_value=1, max_value=20))
    durations = draw(
        st.lists(
            st.floats(min_value=1e-4, max_value=2.0),
            min_size=n,
            max_size=n,
        )
    )
    values = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=500.0),
            min_size=n,
            max_size=n,
        )
    )
    return PowerTrace.from_durations(np.array(durations), np.array(values))


@given(traces())
@settings(max_examples=100)
def test_energy_bounded_by_extremes(trace):
    assert (
        trace.min_power() * trace.duration - 1e-9
        <= trace.energy()
        <= trace.max_power() * trace.duration + 1e-9
    )


@given(traces(), st.floats(min_value=0.0, max_value=10.0))
@settings(max_examples=100)
def test_scaling_linearity(trace, factor):
    assert trace.scaled(factor).energy() == pytest.approx(
        factor * trace.energy(), abs=1e-9
    )


@given(traces(), traces())
@settings(max_examples=100)
def test_concatenation_adds(t1, t2):
    joined = t1.concatenated(t2)
    assert joined.duration == pytest.approx(t1.duration + t2.duration)
    assert joined.energy() == pytest.approx(t1.energy() + t2.energy(), rel=1e-9)


@given(traces())
@settings(max_examples=100)
def test_coalesce_preserves_energy(trace):
    merged = trace.coalesced()
    assert merged.duration == pytest.approx(trace.duration)
    assert merged.energy() == pytest.approx(trace.energy(), rel=1e-9)


@given(
    traces(),
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=5.0),
            st.floats(min_value=1e-4, max_value=0.5),
        ),
        max_size=5,
    ),
    st.floats(min_value=0.0, max_value=50.0),
)
@settings(max_examples=100)
def test_stall_insertion_conserves_active_energy(trace, stalls, stall_power):
    out = insert_stalls(trace, stalls, stall_power)
    total_stall = sum(length for _, length in stalls)
    assert out.duration == pytest.approx(trace.duration + total_stall, rel=1e-9)
    assert out.energy() == pytest.approx(
        trace.energy() + stall_power * total_stall, rel=1e-6, abs=1e-9
    )


@given(traces(), st.integers(min_value=1, max_value=2000))
@settings(max_examples=60)
def test_sampling_within_range(trace, n):
    times = np.linspace(
        float(trace.edges[0]), float(trace.edges[-1]), n
    )
    values = trace.sample(times)
    assert np.all(values >= trace.min_power() - 1e-12)
    assert np.all(values <= trace.max_power() + 1e-12)


# ---------------------------------------------------------------------------
# Cache simulator invariants.
# ---------------------------------------------------------------------------

@given(
    assoc=st.sampled_from([1, 2, 4, 8]),
    n_sets=st.sampled_from([1, 2, 8]),
    addresses=st.lists(st.integers(min_value=0, max_value=1 << 16), max_size=300),
)
@settings(max_examples=100)
def test_cache_occupancy_and_counters(assoc, n_sets, addresses):
    line = 64
    geom = CacheGeometry("L", n_sets * assoc * line, line, assoc)
    sim = CacheLevelSim(geom)
    for addr in addresses:
        sim.access_line(addr // line)
    assert sim.hits + sim.misses == len(addresses)
    assert sim.occupancy <= geom.n_lines
    distinct = len({a // line for a in addresses})
    assert sim.occupancy <= distinct
    # Misses at least cover the distinct lines that fit nowhere twice.
    assert sim.misses >= min(distinct, 1) if addresses else True


@given(
    addresses=st.lists(
        st.integers(min_value=0, max_value=1 << 14), min_size=1, max_size=200
    )
)
@settings(max_examples=100)
def test_second_identical_access_always_hits_with_full_assoc(addresses):
    """A fully-associative cache larger than the trace never misses on
    a repeated access (LRU never evicts within capacity)."""
    line = 64
    n_lines = 512  # > max distinct lines in the trace (256)
    geom = CacheGeometry("L", n_lines * line, line, n_lines)
    sim = CacheLevelSim(geom)
    seen = set()
    for addr in addresses:
        tag = addr // line
        hit = sim.access_line(tag)
        assert hit == (tag in seen)
        seen.add(tag)


@given(
    addresses=st.lists(
        st.integers(min_value=0, max_value=1 << 14), min_size=1, max_size=200
    )
)
@settings(max_examples=60)
def test_hierarchy_serves_every_access_somewhere(addresses):
    h = CacheHierarchySim(
        [
            CacheGeometry("L1", 1024, 64, 4),
            CacheGeometry("L2", 8192, 64, 8),
        ]
    )
    stats = h.run_trace(addresses)
    assert stats.total == len(addresses)
    assert sum(stats.hits) + stats.dram == len(addresses)


@given(n=st.integers(min_value=2, max_value=500), seed=st.integers(0, 2 ** 31))
@settings(max_examples=100)
def test_chase_permutation_single_cycle(n, seed):
    rng = np.random.default_rng(seed)
    perm = chase_permutation(rng, n)
    slot = 0
    for step in range(1, n + 1):
        slot = int(perm[slot])
        if slot == 0:
            break
    assert step == n  # returns to start only after visiting all slots
