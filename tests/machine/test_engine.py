"""Unit tests for repro.machine.engine and kernel."""

import math

import numpy as np
import pytest

from repro.machine.config import PlatformConfig, PlatformEffects, VendorPeaks, smooth_max
from repro.machine.engine import Engine
from repro.machine.governor import GovernorSettings
from repro.machine.kernel import DRAM, KernelSpec
from repro.machine.noise import NoiseSpec
from repro.machine.platforms import platform


@pytest.fixture
def clean_config(simple_machine):
    """simple_machine wrapped as a platform with NO second-order effects."""
    return PlatformConfig(
        truth=simple_machine,
        vendor=VendorPeaks(flops_single=120e9, bandwidth=12e9),
        effects=PlatformEffects(
            ridge_smoothing=0.0,
            governor=GovernorSettings(period=1e-4),
            noise=NoiseSpec(),
        ),
        idle_power=4.0,
        line_size=64,
        kind="cpu",
    )


class TestKernelSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="name"):
            KernelSpec(name="", flops=1.0)
        with pytest.raises(ValueError, match="some work"):
            KernelSpec(name="empty")
        with pytest.raises(ValueError, match="precision"):
            KernelSpec(name="k", flops=1.0, precision="half")
        with pytest.raises(ValueError, match="pattern"):
            KernelSpec(name="k", flops=1.0, pattern="zigzag")
        with pytest.raises(ValueError, match="non-negative"):
            KernelSpec(name="k", traffic={"dram": -1.0})

    def test_traffic_immutable(self):
        k = KernelSpec(name="k", traffic={DRAM: 10.0})
        with pytest.raises(TypeError):
            k.traffic[DRAM] = 20.0

    def test_derived_quantities(self):
        k = KernelSpec(name="k", flops=100.0, traffic={DRAM: 25.0, "L1": 10.0})
        assert k.dram_bytes == 25.0
        assert k.total_bytes == 35.0
        assert k.intensity == pytest.approx(4.0)

    def test_cache_resident_intensity_infinite(self):
        k = KernelSpec(name="k", flops=10.0, traffic={"L1": 5.0})
        assert math.isinf(k.intensity)

    def test_scaled(self):
        k = KernelSpec(
            name="k", flops=10.0, traffic={DRAM: 4.0}, random_accesses=2.0,
            working_set=100,
        )
        s = k.scaled(2.5)
        assert s.flops == 25.0
        assert s.traffic[DRAM] == 10.0
        assert s.random_accesses == 5.0
        assert s.working_set == 100  # unchanged
        with pytest.raises(ValueError):
            k.scaled(0.0)


class TestSmoothMax:
    def test_zero_smoothing_is_max(self):
        assert smooth_max(3.0, 4.0, 0.0) == 4.0

    def test_always_at_least_max(self):
        for s in (0.05, 0.1, 0.3):
            assert smooth_max(3.0, 4.0, s) >= 4.0

    def test_rounded_knee_value(self):
        # Equal components: 2^s * a.
        assert smooth_max(5.0, 5.0, 0.2) == pytest.approx(5.0 * 2 ** 0.2)

    def test_far_from_knee_tight(self):
        assert smooth_max(1.0, 100.0, 0.1) == pytest.approx(100.0, rel=1e-6)

    def test_zero_inputs(self):
        assert smooth_max(0.0, 0.0, 0.1) == 0.0
        assert smooth_max(0.0, 2.0, 0.1) == pytest.approx(2.0)

    def test_negative_smoothing_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            smooth_max(1.0, 2.0, -0.1)

    def test_extreme_magnitudes_stay_finite(self):
        # Huge components must not overflow the p-norm ...
        assert smooth_max(1e308, 1e308, 0.1) == pytest.approx(
            1e308 * 2 ** 0.1
        )
        # ... tiny ones must not underflow to zero ...
        assert smooth_max(1e-308, 1e-308, 0.1) == pytest.approx(
            1e-308 * 2 ** 0.1
        )
        # ... and mixed scales stay exact at the dominant component.
        assert smooth_max(1e-300, 1e300, 0.1) == 1e300

    def test_tiny_smoothing_is_hard_max(self):
        # p = 1/smoothing is astronomically large: the ratio term
        # underflows to the hard max, the correct limiting value.
        result = smooth_max(3.0, 4.0, 1e-9)
        assert np.isfinite(result)
        assert result == 4.0

    def test_array_inputs_match_scalar(self):
        a = np.array([3.0, 0.0, 1e-308, 1e308])
        b = np.array([4.0, 0.0, 1e-308, 1.0])
        out = smooth_max(a, b, 0.2)
        assert out.shape == a.shape
        for i in range(len(a)):
            assert out[i] == smooth_max(float(a[i]), float(b[i]), 0.2)

    def test_scalar_inputs_return_python_float(self):
        assert isinstance(smooth_max(1.0, 2.0, 0.1), float)
        assert isinstance(smooth_max(1.0, 2.0, 0.0), float)


class TestComponentPhysics:
    def test_component_times(self, clean_config):
        engine = Engine(clean_config)
        k = KernelSpec(name="k", flops=1e10, traffic={DRAM: 1e9})
        t_f, t_m = engine.component_times(k)
        assert t_f == pytest.approx(0.1)
        assert t_m == pytest.approx(0.1)

    def test_cache_level_times_add(self, clean_config):
        engine = Engine(clean_config)
        k = KernelSpec(name="k", traffic={"L1": 1e10, "L2": 1e9})
        _, t_m = engine.component_times(k)
        assert t_m == pytest.approx(1e10 / 100e9 + 1e9 / 50e9)

    def test_unknown_level_raises(self, clean_config):
        engine = Engine(clean_config)
        k = KernelSpec(name="k", traffic={"L7": 1.0})
        with pytest.raises(KeyError, match="L7"):
            engine.component_times(k)

    def test_random_access_time(self, clean_config):
        engine = Engine(clean_config)
        k = KernelSpec(name="k", random_accesses=1e6)
        _, t_m = engine.component_times(k)
        assert t_m == pytest.approx(1e6 / 100e6)

    def test_dynamic_energy_decomposition(self, clean_config):
        engine = Engine(clean_config)
        k = KernelSpec(
            name="k", flops=1e10, traffic={DRAM: 1e8}, random_accesses=1e5
        )
        expected = 1e10 * 10e-12 + 1e8 * 100e-12 + 1e5 * 10e-9
        assert engine.dynamic_energy(k) == pytest.approx(expected)


class TestCleanExecutionMatchesModel:
    """With effects and noise off, the engine reproduces the capped
    closed-form model up to governor discretisation."""

    @pytest.mark.parametrize("intensity", [0.25, 2.0, 10.0, 64.0, 512.0])
    def test_time_matches_capped_model(self, clean_config, intensity):
        engine = Engine(clean_config)  # rng=None: no noise
        Q = 1e9
        k = KernelSpec(name="k", flops=intensity * Q, traffic={DRAM: Q})
        result = engine.run(k)
        # The control loop settles slightly *below* the cap (one-sided
        # enforcement), so governed runs land within ~2x the hysteresis
        # band above the ideal time, never below it.
        assert result.wall_time >= result.ideal_time * (1 - 1e-9)
        assert result.wall_time == pytest.approx(result.ideal_time, rel=0.04)

    @pytest.mark.parametrize("intensity", [0.25, 10.0, 512.0])
    def test_energy_matches_capped_model(self, clean_config, intensity):
        from repro.core import model

        engine = Engine(clean_config)
        Q = 1e9
        k = KernelSpec(name="k", flops=intensity * Q, traffic={DRAM: Q})
        result = engine.run(k)
        expected = model.energy(clean_config.truth, k.flops, Q)
        assert result.true_energy == pytest.approx(expected, rel=0.03)

    def test_throttle_flag_set_in_cap_region(self, clean_config):
        engine = Engine(clean_config)
        Q = 1e9
        k = KernelSpec(name="k", flops=10.0 * Q, traffic={DRAM: Q})  # ridge
        assert engine.run(k).throttled

    def test_no_throttle_outside_cap_region(self, clean_config):
        engine = Engine(clean_config)
        Q = 1e9
        k = KernelSpec(name="k", flops=0.1 * Q, traffic={DRAM: Q})
        assert not engine.run(k).throttled

    def test_power_never_exceeds_budget(self, clean_config):
        engine = Engine(clean_config)
        Q = 1e9
        truth = clean_config.truth
        for intensity in (1.0, 5.0, 10.0, 20.0, 100.0):
            k = KernelSpec(name="k", flops=intensity * Q, traffic={DRAM: Q})
            result = engine.run(k)
            # Skip the initial ramp (first 5 control periods).
            tail = result.trace.values[5:]
            assert np.all(tail <= truth.pi1 + truth.delta_pi + 1e-9)


class TestSecondOrderEffects:
    def test_ridge_smoothing_slows_the_knee(self, clean_config, simple_machine):
        from dataclasses import replace

        # Use the uncapped machine: at a capped ridge, time is set by
        # dynamic energy / cap, which rounding barely changes.
        uncapped = replace(clean_config, truth=simple_machine.uncapped())
        smooth_cfg = replace(
            uncapped,
            effects=replace(uncapped.effects, ridge_smoothing=0.2),
        )
        Q = 1e9
        k = KernelSpec(
            name="k", flops=simple_machine.time_balance * Q, traffic={DRAM: Q}
        )
        hard = Engine(uncapped).run(k)
        soft = Engine(smooth_cfg).run(k)
        # At the knee the p-norm costs 2^0.2 ~ 15%.
        assert soft.wall_time == pytest.approx(
            hard.wall_time * 2 ** 0.2, rel=0.01
        )

    def test_utilisation_scaling_cuts_mid_intensity_energy(self, clean_config):
        from dataclasses import replace

        cfg = replace(
            clean_config,
            effects=replace(
                clean_config.effects, utilisation_energy_slope=0.3
            ),
        )
        Q = 1e9
        # Memory-bound: flop pipeline underutilised -> flop energy cut.
        k = KernelSpec(name="k", flops=0.5 * Q, traffic={DRAM: Q})
        assert Engine(cfg).dynamic_energy(k) < Engine(clean_config).dynamic_energy(k)

    def test_interference_extends_time_at_constant_power(self, clean_config):
        from dataclasses import replace

        cfg = replace(
            clean_config,
            effects=replace(
                clean_config.effects,
                noise=NoiseSpec(
                    interference_rate=100.0, interference_duration=0.01
                ),
            ),
        )
        Q = 5e9
        k = KernelSpec(name="k", flops=0.1 * Q, traffic={DRAM: Q})
        clean = Engine(cfg, rng=None).run(k)
        noisy = Engine(cfg, rng=np.random.default_rng(0)).run(k)
        assert noisy.wall_time > clean.wall_time

    def test_seeded_runs_reproducible(self, clean_config):
        from dataclasses import replace

        cfg = replace(
            clean_config,
            effects=replace(
                clean_config.effects, noise=NoiseSpec(time_sigma=0.05)
            ),
        )
        k = KernelSpec(name="k", flops=1e9, traffic={DRAM: 1e9})
        a = Engine(cfg, rng=np.random.default_rng(7)).run(k)
        b = Engine(cfg, rng=np.random.default_rng(7)).run(k)
        assert a.wall_time == b.wall_time
        assert a.true_energy == b.true_energy

    def test_cap_guard_band_throttles_earlier(self, clean_config):
        from dataclasses import replace

        guarded = replace(
            clean_config,
            effects=replace(clean_config.effects, cap_guard_band=0.2),
        )
        Q = 1e9
        k = KernelSpec(name="k", flops=10.0 * Q, traffic={DRAM: Q})
        plain = Engine(clean_config).run(k)
        tight = Engine(guarded).run(k)
        assert tight.wall_time > plain.wall_time


class TestIdleAndMissingParams:
    def test_idle_trace_uses_idle_power(self, clean_config):
        trace = Engine(clean_config).idle_trace(2.0)
        assert trace.average_power() == pytest.approx(4.0)
        assert trace.duration == pytest.approx(2.0)

    def test_random_access_without_params_raises(self):
        cfg = platform("nuc-gpu")  # no random-access parameters
        engine = Engine(cfg)
        k = KernelSpec(name="k", random_accesses=100.0)
        with pytest.raises(ValueError, match="random-access"):
            engine.run(k)

    def test_random_access_guard_covers_every_entry_point(self):
        """The guard lives in one place (_gather), so component times,
        dynamic energy and the ideal-time cap check all reject a
        dependent-access kernel on a platform without random-access
        parameters -- with an error naming the kernel and platform."""
        cfg = platform("nuc-gpu")
        engine = Engine(cfg)
        k = KernelSpec(name="chase-probe", flops=1.0, random_accesses=64.0)
        for method in (
            engine.component_times,
            engine.dynamic_energy,
            engine.ideal_time,
        ):
            with pytest.raises(ValueError) as err:
                method(k)
            assert "chase-probe" in str(err.value)
            assert cfg.truth.name in str(err.value)

    def test_real_platform_clean_run_tracks_model(self):
        from repro.core import model

        cfg = platform("gtx-titan")
        engine = Engine(cfg, rng=None)  # noise off, physics effects on
        Q = 1e9
        k = KernelSpec(name="k", flops=64.0 * Q, traffic={DRAM: Q})
        result = engine.run(k)
        expected = float(model.time(cfg.truth, k.flops, Q))
        assert result.wall_time == pytest.approx(expected, rel=0.1)
