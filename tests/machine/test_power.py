"""Unit tests for repro.machine.power (PowerTrace)."""

import numpy as np
import pytest

from repro.machine.power import PowerTrace


@pytest.fixture
def trace():
    """Three segments: 10 W for 1 s, 20 W for 2 s, 5 W for 1 s."""
    return PowerTrace(np.array([0.0, 1.0, 3.0, 4.0]), np.array([10.0, 20.0, 5.0]))


class TestValidation:
    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="len"):
            PowerTrace(np.array([0.0, 1.0]), np.array([1.0, 2.0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            PowerTrace(np.array([0.0]), np.array([]))

    def test_non_increasing_edges(self):
        with pytest.raises(ValueError, match="increasing"):
            PowerTrace(np.array([0.0, 1.0, 1.0]), np.array([1.0, 2.0]))

    def test_negative_power(self):
        with pytest.raises(ValueError, match="non-negative"):
            PowerTrace(np.array([0.0, 1.0]), np.array([-1.0]))

    def test_constant_rejects_zero_duration(self):
        with pytest.raises(ValueError, match="duration"):
            PowerTrace.constant(5.0, 0.0)

    def test_from_durations_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            PowerTrace.from_durations(np.array([1.0, 0.0]), np.array([1.0, 2.0]))


class TestQuantities:
    def test_duration(self, trace):
        assert trace.duration == pytest.approx(4.0)

    def test_energy_exact_integral(self, trace):
        assert trace.energy() == pytest.approx(10 * 1 + 20 * 2 + 5 * 1)

    def test_average_power(self, trace):
        assert trace.average_power() == pytest.approx(55.0 / 4.0)

    def test_extremes(self, trace):
        assert trace.max_power() == 20.0
        assert trace.min_power() == 5.0

    def test_constant_constructor(self):
        t = PowerTrace.constant(7.0, 2.0)
        assert t.energy() == pytest.approx(14.0)

    def test_from_durations(self):
        t = PowerTrace.from_durations(np.array([1.0, 3.0]), np.array([2.0, 4.0]))
        assert t.duration == pytest.approx(4.0)
        assert t.energy() == pytest.approx(14.0)


class TestSampling:
    def test_sample_values(self, trace):
        values = trace.sample(np.array([0.5, 1.5, 3.5]))
        assert values.tolist() == [10.0, 20.0, 5.0]

    def test_final_edge_belongs_to_last_segment(self, trace):
        assert trace.sample(np.array([4.0]))[0] == 5.0

    def test_out_of_range_rejected(self, trace):
        with pytest.raises(ValueError, match="within"):
            trace.sample(np.array([4.5]))
        with pytest.raises(ValueError, match="within"):
            trace.sample(np.array([-0.1]))

    def test_dense_sampling_approximates_energy(self, trace):
        times = np.linspace(0, trace.duration, 100_001)[:-1] + trace.duration / 200_002
        approx = np.mean(trace.sample(times)) * trace.duration
        assert approx == pytest.approx(trace.energy(), rel=1e-3)


class TestTransforms:
    def test_scaled(self, trace):
        assert trace.scaled(0.5).energy() == pytest.approx(trace.energy() / 2)

    def test_scaled_rejects_negative(self, trace):
        with pytest.raises(ValueError):
            trace.scaled(-1.0)

    def test_shifted(self, trace):
        shifted = trace.shifted(1.0)
        assert shifted.energy() == pytest.approx(trace.energy() + trace.duration)

    def test_shifted_rejects_negative_result(self, trace):
        with pytest.raises(ValueError, match="negative"):
            trace.shifted(-6.0)

    def test_concatenated(self, trace):
        double = trace.concatenated(trace)
        assert double.duration == pytest.approx(2 * trace.duration)
        assert double.energy() == pytest.approx(2 * trace.energy())

    def test_coalesced_merges_equal_segments(self):
        t = PowerTrace(
            np.array([0.0, 1.0, 2.0, 3.0]), np.array([5.0, 5.0, 7.0])
        )
        merged = t.coalesced()
        assert len(merged.values) == 2
        assert merged.energy() == pytest.approx(t.energy())

    def test_coalesced_tolerance(self):
        t = PowerTrace(
            np.array([0.0, 1.0, 2.0]), np.array([100.0, 100.5])
        )
        assert len(t.coalesced(rel_tol=0.01).values) == 1
        assert len(t.coalesced(rel_tol=1e-4).values) == 2
