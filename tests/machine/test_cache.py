"""Unit tests for the trace-driven cache simulator."""

import numpy as np
import pytest

from repro.machine.cache import (
    CacheGeometry,
    CacheHierarchySim,
    CacheLevelSim,
    expected_chase_level,
    expected_stream_hits,
    hierarchy_from_level_params,
)
from repro.core.params import CacheLevelParams
from repro.machine.trace import pointer_chase_trace, stream_trace


def geom(name="L1", capacity=1024, line=64, assoc=4):
    return CacheGeometry(name, capacity, line, assoc)


class TestGeometry:
    def test_derived_counts(self):
        g = geom(capacity=4096, line=64, assoc=4)
        assert g.n_sets == 16
        assert g.n_lines == 64

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError, match="power of two"):
            geom(line=48)

    def test_rejects_indivisible_capacity(self):
        with pytest.raises(ValueError, match="divisible"):
            CacheGeometry("L1", 1000, 64, 4)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CacheGeometry("L1", 0, 64, 4)


class TestCacheLevelSim:
    def test_cold_miss_then_hit(self):
        sim = CacheLevelSim(geom())
        assert not sim.access_line(0)
        assert sim.access_line(0)
        assert sim.hits == 1 and sim.misses == 1

    def test_lru_eviction_within_set(self):
        # 1 set, 2 ways: capacity 128, line 64, assoc 2.
        sim = CacheLevelSim(geom(capacity=128, line=64, assoc=2))
        sim.access_line(0)
        sim.access_line(1)
        sim.access_line(2)  # evicts line 0 (LRU)
        assert not sim.access_line(0)
        assert sim.access_line(2)

    def test_lru_order_updated_on_hit(self):
        sim = CacheLevelSim(geom(capacity=128, line=64, assoc=2))
        sim.access_line(0)
        sim.access_line(1)
        sim.access_line(0)  # 0 becomes MRU
        sim.access_line(2)  # evicts 1
        assert sim.access_line(0)
        assert not sim.access_line(1)

    def test_set_mapping_conflicts(self):
        # 2 sets, 1 way each: even lines -> set 0, odd lines -> set 1.
        sim = CacheLevelSim(geom(capacity=128, line=64, assoc=1))
        sim.access_line(0)
        sim.access_line(2)  # conflicts with line 0 in set 0
        assert not sim.access_line(0)
        sim.access_line(1)
        assert sim.access_line(1)

    def test_occupancy_and_flush(self):
        sim = CacheLevelSim(geom())
        for line in range(5):
            sim.access_line(line)
        assert sim.occupancy == 5
        sim.flush()
        assert sim.occupancy == 0
        assert sim.misses == 0

    def test_reset_counters_keeps_contents(self):
        sim = CacheLevelSim(geom())
        sim.access_line(0)
        sim.reset_counters()
        assert sim.access_line(0)
        assert sim.hits == 1 and sim.misses == 0


class TestHierarchy:
    def make(self):
        return CacheHierarchySim(
            [geom("L1", 1024, 64, 4), geom("L2", 8192, 64, 8)]
        )

    def test_rejects_mixed_line_sizes(self):
        with pytest.raises(ValueError, match="line size"):
            CacheHierarchySim([geom("L1", 1024, 64), geom("L2", 8192, 128)])

    def test_rejects_wrong_order(self):
        with pytest.raises(ValueError, match="ordered"):
            CacheHierarchySim([geom("L1", 8192, 64), geom("L2", 1024, 64)])

    def test_cold_access_is_dram(self):
        assert self.make().access(0) == "dram"

    def test_warm_access_is_l1(self):
        h = self.make()
        h.access(0)
        assert h.access(0) == "L1"

    def test_l1_victim_found_in_l2(self):
        h = self.make()
        # Touch more distinct lines than L1 holds (16) but fewer than
        # L2 holds (128): the second pass hits in L1 or L2, not DRAM.
        n_lines = 32
        for line in range(n_lines):
            h.access(line * 64)
        served = [h.access(line * 64) for line in range(n_lines)]
        assert "dram" not in served
        assert "L2" in served

    def test_run_trace_stats(self):
        h = self.make()
        addrs = stream_trace(1024, 64, passes=2)
        stats = h.run_trace(addrs)
        assert stats.total == len(addrs)
        # Second pass hits entirely in L1 (16 lines fit).
        assert stats.hits[0] >= 16

    def test_warm_resets_counters(self):
        h = self.make()
        addrs = stream_trace(1024, 64)
        h.warm(addrs)
        stats = h.run_trace(addrs)
        assert stats.fraction_from("L1") == 1.0

    def test_stats_bytes_and_fractions(self):
        h = self.make()
        h.warm(stream_trace(1024, 64))
        stats = h.run_trace(stream_trace(1024, 64))
        by = stats.bytes_from(64)
        assert by["L1"] == pytest.approx(1024)
        assert by["dram"] == 0.0
        with pytest.raises(KeyError):
            stats.fraction_from("L9")


class TestClosedForms:
    def test_expected_stream_hits(self):
        capacities = [1024, 8192]
        assert expected_stream_hits(512, capacities) == 0
        assert expected_stream_hits(4096, capacities) == 1
        assert expected_stream_hits(65536, capacities) is None
        assert expected_stream_hits(512, capacities, warm=False) is None

    def test_expected_chase_level_matches_stream(self):
        assert expected_chase_level(512, [1024]) == 0
        assert expected_chase_level(4096, [1024]) is None

    def test_rejects_nonpositive_ws(self):
        with pytest.raises(ValueError):
            expected_stream_hits(0, [1024])

    def test_simulator_agrees_with_closed_form(self):
        """Cross-validation: warm sweeps are served by the predicted
        level for working sets well inside each capacity."""
        h = CacheHierarchySim([geom("L1", 2048, 64, 8), geom("L2", 16384, 64, 8)])
        for ws, expected in [(1024, "L1"), (8192, "L2")]:
            h.flush()
            addrs = stream_trace(ws, 64)
            h.warm(addrs)
            stats = h.run_trace(addrs)
            assert stats.fraction_from(expected) == 1.0, ws

    def test_oversized_sweep_misses_lru(self):
        """A cyclic sweep larger than the cache never hits under LRU."""
        h = CacheHierarchySim([geom("L1", 1024, 64, 16)])
        addrs = stream_trace(4096, 64, passes=3)
        stats = h.run_trace(addrs)
        assert stats.fraction_from("dram") == 1.0


class TestChaseThroughCaches:
    def test_dram_sized_chase_misses(self, rng):
        h = CacheHierarchySim([geom("L1", 4096, 64, 8)])
        addrs = pointer_chase_trace(rng, 1 << 20, 64, 5000)
        h.warm(addrs[:1000])
        stats = h.run_trace(addrs)
        assert stats.fraction_from("dram") > 0.95

    def test_resident_chase_hits(self, rng):
        h = CacheHierarchySim([geom("L1", 4096, 64, 8)])
        addrs = pointer_chase_trace(rng, 2048, 64, 2000)
        h.warm(addrs[:64])
        stats = h.run_trace(addrs)
        assert stats.fraction_from("L1") > 0.95


class TestHierarchyFromParams:
    def test_builds_from_level_params(self):
        levels = [
            CacheLevelParams("L1", eps_byte=1e-12, bandwidth=1e9, capacity=32768),
            CacheLevelParams("L2", eps_byte=2e-12, bandwidth=1e9, capacity=262144),
        ]
        h = hierarchy_from_level_params(levels, 64)
        assert h.level_names == ("L1", "L2")

    def test_skips_capacityless_levels(self):
        levels = [CacheLevelParams("L1", eps_byte=1e-12, bandwidth=1e9)]
        assert hierarchy_from_level_params(levels, 64) is None

    def test_associativity_adjusts_for_divisibility(self):
        levels = [
            CacheLevelParams("odd", eps_byte=1e-12, bandwidth=1e9, capacity=96 * 1024)
        ]
        h = hierarchy_from_level_params(levels, 64)
        assert h is not None  # 96 KiB % (64 * 8) == 0 at assoc 8 already
