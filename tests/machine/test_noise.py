"""Unit tests for repro.machine.noise."""

import numpy as np
import pytest

from repro.machine.noise import (
    NoiseSpec,
    apply_trace_noise,
    insert_stalls,
    lognormal_factor,
    sample_stalls,
)
from repro.machine.power import PowerTrace


class TestNoiseSpec:
    def test_defaults_are_silent(self):
        spec = NoiseSpec()
        assert spec.time_sigma == 0.0
        assert spec.interference_rate == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            NoiseSpec(time_sigma=-0.1)

    def test_interference_fields_coupled(self):
        with pytest.raises(ValueError, match="both"):
            NoiseSpec(interference_rate=1.0)
        with pytest.raises(ValueError, match="both"):
            NoiseSpec(interference_duration=1.0)


class TestLognormalFactor:
    def test_zero_sigma_is_deterministic_one(self, rng):
        state = rng.bit_generator.state
        assert lognormal_factor(rng, 0.0) == 1.0
        # No random numbers consumed.
        assert rng.bit_generator.state == state

    def test_positive_and_median_near_one(self, rng):
        factors = [lognormal_factor(rng, 0.1) for _ in range(2000)]
        assert all(f > 0 for f in factors)
        assert np.median(factors) == pytest.approx(1.0, abs=0.02)


class TestTraceNoise:
    def test_zero_sigma_returns_same_object(self, rng):
        trace = PowerTrace.constant(10.0, 1.0)
        assert apply_trace_noise(rng, trace, 0.0) is trace

    def test_noise_preserves_timeline(self, rng):
        trace = PowerTrace(np.array([0.0, 1.0, 2.0]), np.array([10.0, 20.0]))
        noisy = apply_trace_noise(rng, trace, 0.05)
        assert np.array_equal(noisy.edges, trace.edges)
        assert not np.array_equal(noisy.values, trace.values)

    def test_noise_unbiased_in_median(self, rng):
        trace = PowerTrace.from_durations(
            np.ones(4000), np.full(4000, 10.0)
        )
        noisy = apply_trace_noise(rng, trace, 0.1)
        assert np.median(noisy.values) == pytest.approx(10.0, rel=0.02)


class TestSampleStalls:
    def test_zero_rate_empty(self, rng):
        assert sample_stalls(rng, 1.0, 0.0, 0.0) == []

    def test_sorted_and_in_range(self, rng):
        stalls = sample_stalls(rng, 10.0, 5.0, 0.01)
        times = [t for t, _ in stalls]
        assert times == sorted(times)
        assert all(0 <= t <= 10.0 for t in times)
        assert all(length > 0 for _, length in stalls)

    def test_poisson_count(self, rng):
        counts = [len(sample_stalls(rng, 1.0, 8.0, 0.01)) for _ in range(500)]
        assert np.mean(counts) == pytest.approx(8.0, rel=0.1)


class TestInsertStalls:
    def test_no_stalls_identity(self):
        trace = PowerTrace.constant(10.0, 1.0)
        assert insert_stalls(trace, [], 2.0) is trace

    def test_extends_duration_by_total_stall(self):
        trace = PowerTrace(np.array([0.0, 1.0, 2.0]), np.array([10.0, 20.0]))
        out = insert_stalls(trace, [(0.5, 0.1), (1.5, 0.2)], 3.0)
        assert out.duration == pytest.approx(2.3)

    def test_preserves_active_energy(self):
        trace = PowerTrace(np.array([0.0, 1.0, 2.0]), np.array([10.0, 20.0]))
        out = insert_stalls(trace, [(0.5, 0.1), (1.5, 0.2)], 3.0)
        stall_energy = 3.0 * 0.3
        assert out.energy() == pytest.approx(trace.energy() + stall_energy)

    def test_stall_power_appears(self):
        trace = PowerTrace.constant(10.0, 1.0)
        out = insert_stalls(trace, [(0.5, 0.2)], 3.0)
        assert 3.0 in out.values.tolist()

    def test_stall_at_boundary(self):
        trace = PowerTrace(np.array([0.0, 1.0, 2.0]), np.array([10.0, 20.0]))
        out = insert_stalls(trace, [(1.0, 0.5)], 0.0)
        assert out.duration == pytest.approx(2.5)
        assert out.energy() == pytest.approx(trace.energy())

    def test_stall_beyond_end_appends(self):
        trace = PowerTrace.constant(10.0, 1.0)
        out = insert_stalls(trace, [(5.0, 0.3)], 1.0)
        assert out.duration == pytest.approx(1.3)
        assert out.values[-1] == 1.0

    def test_zero_length_stall_ignored(self):
        trace = PowerTrace.constant(10.0, 1.0)
        out = insert_stalls(trace, [(0.5, 0.0)], 1.0)
        assert out.duration == pytest.approx(1.0)

    def test_many_stalls_order_independent(self, rng):
        trace = PowerTrace.from_durations(
            np.full(10, 0.1), np.linspace(5, 50, 10)
        )
        stalls = [(float(t), 0.05) for t in rng.uniform(0, 1.0, 7)]
        out = insert_stalls(trace, stalls, 2.0)
        assert out.duration == pytest.approx(1.0 + 7 * 0.05)
        assert out.energy() == pytest.approx(
            trace.energy() + 2.0 * 7 * 0.05
        )
