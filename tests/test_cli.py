"""Tests for the archline CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_validates_experiment_ids(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_platform_validates_ids(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["platform", "cray-1"])

    def test_quick_flag(self):
        args = build_parser().parse_args(["run", "vd", "--quick"])
        assert args.quick


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gtx-titan" in out
        assert "table1" in out

    def test_platform(self, capsys):
        assert main(["platform", "xeon-phi"]) == 0
        out = capsys.readouterr().out
        assert "time balance" in out
        assert "Xeon Phi" in out

    def test_run_cheap_experiment(self, capsys):
        code = main(["run", "vd"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Power throttling" in out
        assert "PASS" in out

    def test_run_multiple(self, capsys):
        code = main(["run", "vc", "vd"])
        out = capsys.readouterr().out
        assert code == 0
        assert "vc:" in out and "vd:" in out

    def test_bench_platform(self, capsys):
        assert main(["bench", "arndale-gpu", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "delta_pi" in out
        assert "Arndale GPU" in out

    def test_audit(self, capsys):
        assert main(["audit"]) == 0
        out = capsys.readouterr().out
        assert "internal-consistency audit" in out
        assert "INCONSISTENT" in out

    def test_export(self, capsys, tmp_path):
        assert main(["export", "--outdir", str(tmp_path / "a")]) == 0
        out = capsys.readouterr().out
        assert "claims.csv" in out
        assert (tmp_path / "a" / "fig1.csv").exists()

    def test_roofline_and_compare_registered(self):
        parser = build_parser()
        args = parser.parse_args(["roofline", "gtx-titan"])
        assert args.metric == "performance"
        args = parser.parse_args(["compare", "gtx-titan", "arndale-gpu"])
        assert args.metric == "flops_per_joule"

    def test_algorithms(self, capsys):
        assert main(["algorithms", "--platform", "xeon-phi"]) == 0
        out = capsys.readouterr().out
        assert "matmul" in out and "best platform" in out

    def test_uncertainty(self, capsys):
        assert main(["uncertainty", "arndale-gpu", "--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "Fit uncertainty" in out
        assert "delta_pi" in out


class TestServeParser:
    """``archline serve`` argument surface (the service itself is
    load-tested in tests/serve/)."""

    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8787
        assert args.max_batch == 32
        assert args.linger_us == 1000
        assert args.trace is None
        assert not args.refresh
        assert not args.quick_fit

    def test_all_knobs(self):
        args = build_parser().parse_args(
            [
                "serve", "--host", "0.0.0.0", "--port", "0",
                "--max-batch", "8", "--linger-us", "500",
                "--max-body-bytes", "1024", "--trace", "t.jsonl",
                "--cache", "/tmp/c", "--refresh", "--quick-fit",
                "--seed", "7",
            ]
        )
        assert args.port == 0
        assert args.max_batch == 8
        assert args.linger_us == 500
        assert args.max_body_bytes == 1024
        assert args.trace == "t.jsonl"
        assert args.cache_dir == "/tmp/c"
        assert args.refresh
        assert args.quick_fit
        assert args.seed == 7

    def test_cache_flags_mutually_exclusive(self, capsys):
        assert main(["serve", "--cache", "/tmp/c", "--no-cache"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_refresh_requires_cache(self, capsys, monkeypatch):
        monkeypatch.delenv("ARCHLINE_CACHE", raising=False)
        assert main(["serve", "--refresh"]) == 2
        assert "needs a cache" in capsys.readouterr().err


class TestLoadgenCli:
    def test_port_is_required(self):
        from repro.serve.loadgen import main as loadgen_main

        with pytest.raises(SystemExit) as err:
            loadgen_main([])
        assert err.value.code == 2  # argparse usage error
