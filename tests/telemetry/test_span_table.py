"""SpanTable: columnar span storage for the pool pickle boundary."""

import pickle

import pytest

from repro.telemetry.recorder import SpanRecord, SpanTable, TraceRecorder


def make_records(n=5):
    return tuple(
        SpanRecord(
            name=f"span-{i % 3}",
            start=float(i),
            duration=0.5 + i,
            index=i,
            parent=i - 1,
            depth=i % 2,
            meta=(("kernel", f"k{i}"),),
        )
        for i in range(n)
    )


class TestRoundTrip:
    def test_rows_equal_source_records(self):
        records = make_records()
        table = SpanTable.from_records(records)
        assert len(table) == len(records)
        assert table.records() == records
        for i, record in enumerate(records):
            assert table.row(i) == record
            assert table[i] == record

    def test_iteration_yields_span_records(self):
        table = SpanTable.from_records(make_records())
        for row in table:
            assert isinstance(row, SpanRecord)

    def test_negative_index(self):
        records = make_records()
        table = SpanTable.from_records(records)
        assert table[-1] == records[-1]

    def test_out_of_range_raises(self):
        table = SpanTable.from_records(make_records(2))
        with pytest.raises(IndexError):
            table[2]

    def test_non_integer_index_rejected(self):
        table = SpanTable.from_records(make_records(2))
        with pytest.raises(TypeError):
            table["calibrate"]

    def test_empty_table_is_falsy(self):
        table = SpanTable.from_records(())
        assert len(table) == 0
        assert not table
        assert SpanTable.from_records(make_records(1))

    def test_from_real_recorder(self):
        rec = TraceRecorder()
        with rec.span("campaign"):
            with rec.span("calibrate", kernel="peak"):
                pass
        table = SpanTable.from_records(rec.spans)
        assert table.records() == tuple(rec.spans)


class TestPickleFootprint:
    def test_pickles_smaller_than_records(self):
        """The point of the columnar form: many spans must pickle to
        (much) less than the same spans as SpanRecord instances."""
        records = make_records(500)
        table = SpanTable.from_records(records)
        columnar = len(pickle.dumps(table))
        rowwise = len(pickle.dumps(records))
        assert columnar < rowwise * 0.8

    def test_pickle_roundtrip_preserves_rows(self):
        records = make_records(50)
        table = pickle.loads(pickle.dumps(SpanTable.from_records(records)))
        assert table.records() == records
