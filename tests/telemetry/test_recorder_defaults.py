"""Regression tests for the NULL_RECORDER span-site defaults.

The lint PR changed every ``recorder`` parameter default from ``None``
to ``NULL_RECORDER`` (ARCH006).  These tests pin the behavioural
contract: omitting the recorder and passing ``recorder=None``
explicitly both resolve to the shared no-op recorder, and the default
engine output stays bit-identical to an explicitly untraced run.
"""

from __future__ import annotations

import numpy as np

from repro.machine.engine import Engine
from repro.machine.platforms import platform
from repro.microbench.kernels import intensity_kernel
from repro.microbench.runner import BenchmarkRunner
from repro.telemetry import NULL_RECORDER


def test_engine_defaults_to_null_recorder():
    config = platform("gtx-titan")
    assert Engine(config).recorder is NULL_RECORDER
    assert Engine(config, recorder=None).recorder is NULL_RECORDER


def test_runner_defaults_to_null_recorder():
    config = platform("gtx-titan")
    assert BenchmarkRunner(config).recorder is NULL_RECORDER
    assert BenchmarkRunner(config, recorder=None).recorder is NULL_RECORDER


def test_default_and_explicit_none_runs_are_bit_identical():
    config = platform("gtx-titan")
    kernel = intensity_kernel(config, 2.0)
    result_a = Engine(config, rng=np.random.default_rng(7)).run(kernel)
    result_b = Engine(
        config, rng=np.random.default_rng(7), recorder=None
    ).run(kernel)
    assert result_a.wall_time == result_b.wall_time
    np.testing.assert_array_equal(result_a.trace.edges, result_b.trace.edges)
    np.testing.assert_array_equal(result_a.trace.values, result_b.trace.values)
