"""Unit tests for the telemetry layer: recorder, JSONL, summary."""

import json
from types import SimpleNamespace

import pytest

from repro.telemetry.jsonl import (
    SCHEMA_VERSION,
    obj_to_span,
    read_spans,
    read_trace,
    span_to_obj,
    trace_bytes,
    validate_record,
    validate_trace_file,
    write_trace,
)
from repro.telemetry.recorder import (
    NULL_RECORDER,
    NullRecorder,
    SpanRecord,
    TraceRecorder,
)
from repro.telemetry.summary import (
    aggregate_spans,
    render_shard_summary,
    render_summary,
)


class ManualClock:
    """A deterministic stand-in for ``time.perf_counter``."""

    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def advance(self, dt: float) -> None:
        self.now += dt

    def __call__(self) -> float:
        return self.now


class TestTraceRecorder:
    def test_nested_spans(self):
        clock = ManualClock()
        rec = TraceRecorder(clock=clock)
        with rec.span("outer"):
            clock.advance(1.0)
            with rec.span("inner", kernel="k1", n=3):
                clock.advance(2.0)
            clock.advance(0.5)
        inner, outer = rec.spans  # children close (and record) first
        assert inner.name == "inner"
        assert inner.start == 1.0  # relative to the recorder's epoch
        assert inner.duration == 2.0
        assert inner.depth == 1
        assert inner.parent == outer.index
        assert inner.meta_dict() == {"kernel": "k1", "n": "3"}
        assert outer.name == "outer"
        assert outer.start == 0.0
        assert outer.duration == 3.5
        assert outer.depth == 0
        assert outer.parent == -1

    def test_records_sorted_by_start(self):
        clock = ManualClock()
        rec = TraceRecorder(clock=clock)
        with rec.span("root"):
            with rec.span("a"):
                clock.advance(1.0)
            with rec.span("b"):
                clock.advance(1.0)
        assert [s.name for s in rec.records()] == ["root", "a", "b"]

    def test_span_recorded_when_body_raises(self):
        clock = ManualClock()
        rec = TraceRecorder(clock=clock)
        with pytest.raises(RuntimeError):
            with rec.span("dies"):
                clock.advance(1.0)
                raise RuntimeError("boom")
        (span,) = rec.spans
        assert span.name == "dies"
        assert span.duration == 1.0
        # The stack unwound: the next span is a root again.
        with rec.span("after"):
            pass
        assert rec.spans[-1].parent == -1

    def test_counters_accumulate(self):
        rec = TraceRecorder(clock=ManualClock())
        rec.add("backoff_seconds", 0.5)
        rec.add("backoff_seconds", 0.25)
        rec.add("hits")
        assert rec.counters == {"backoff_seconds": 0.75, "hits": 1.0}

    def test_sibling_spans_share_parent(self):
        clock = ManualClock()
        rec = TraceRecorder(clock=clock)
        with rec.span("root"):
            for _ in range(3):
                with rec.span("child"):
                    clock.advance(1.0)
        root = rec.spans[-1]
        children = rec.spans[:-1]
        assert all(c.parent == root.index for c in children)
        assert len({c.index for c in children}) == 3


class TestNullRecorder:
    def test_records_nothing(self):
        rec = NullRecorder()
        with rec.span("ignored", meta="x"):
            rec.add("counter", 5.0)
        assert rec.spans == []
        assert rec.counters == {}
        assert rec.records() == ()

    def test_disabled_flag(self):
        assert NullRecorder.enabled is False
        assert TraceRecorder.enabled is True

    def test_shared_singleton_is_reentrant(self):
        with NULL_RECORDER.span("a"):
            with NULL_RECORDER.span("b"):
                pass
        assert NULL_RECORDER.spans == []


def _sample_spans():
    return (
        SpanRecord(
            name="shard", start=0.0, duration=4.0, index=0, parent=-1,
            depth=0, meta=(("platform", "gtx-titan"),),
        ),
        SpanRecord(
            name="campaign", start=0.1, duration=3.0, index=1, parent=0,
            depth=1,
        ),
        SpanRecord(
            name="fit", start=3.2, duration=0.7, index=2, parent=0, depth=1,
        ),
    )


def _sample_report():
    spans = _sample_spans()
    shard = SimpleNamespace(
        platform_id="gtx-titan",
        status="ok",
        seed=7,
        wall_seconds=4.1,
        n_runs=25,
        runs_attempted=25,
        runs_failed=0,
        retries=0,
        rejected=0,
        runs_skipped=0,
        calibration_hits=20,
        calibration_misses=5,
        backoff_seconds=0.0,
        trace_bytes=trace_bytes("gtx-titan", spans),
        spans=spans,
    )
    return SimpleNamespace(
        workers=2,
        wall_seconds=4.5,
        shard_seconds=4.1,
        parallel_efficiency=0.456,
        shards=(shard,),
    )


class TestJsonl:
    def test_span_round_trip(self):
        for record in _sample_spans():
            obj = span_to_obj("gtx-titan", record)
            validate_record(obj)
            assert obj_to_span(obj) == record

    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        report = _sample_report()
        lines = write_trace(path, report)
        records = read_trace(path)
        assert len(records) == lines
        assert records[0]["type"] == "campaign"
        assert records[0]["schema"] == SCHEMA_VERSION
        assert records[0]["workers"] == 2
        counters = {
            r["name"]: r["value"] for r in records if r["type"] == "counter"
        }
        assert counters["n_runs"] == 25.0
        assert counters["calibration_hits"] == 20.0
        spans = read_spans(path)["gtx-titan"]
        assert tuple(spans) == _sample_spans()

    def test_validate_trace_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert write_trace(path, _sample_report()) == validate_trace_file(path)

    def test_trace_bytes_counts_encoded_lines(self):
        spans = _sample_spans()
        size = trace_bytes("gtx-titan", spans)
        encoded = "".join(
            json.dumps(span_to_obj("gtx-titan", s), separators=(",", ":"),
                       sort_keys=True) + "\n"
            for s in spans
        )
        assert size == len(encoded.encode())

    @pytest.mark.parametrize(
        "obj, match",
        [
            ([], "must be an object"),
            ({"type": "nope"}, "unknown record type"),
            ({"type": "counter", "shard": "x", "name": "n"}, "missing field"),
            (
                {"type": "counter", "shard": "x", "name": "n", "value": True},
                "counter.value",
            ),
            (
                {"type": "counter", "shard": "x", "name": "n", "value": "1"},
                "counter.value",
            ),
            (
                {
                    "type": "span", "shard": "x", "index": 0, "parent": -1,
                    "depth": 0, "name": "s", "start": 0.0, "duration": -1.0,
                    "meta": {},
                },
                "non-negative",
            ),
            (
                {
                    "type": "span", "shard": "x", "index": 0, "parent": -2,
                    "depth": 0, "name": "s", "start": 0.0, "duration": 1.0,
                    "meta": {},
                },
                "out of range",
            ),
            (
                {
                    "type": "span", "shard": "x", "index": 0, "parent": -1,
                    "depth": 0, "name": "s", "start": 0.0, "duration": 1.0,
                    "meta": {"k": 3},
                },
                "str to str",
            ),
            (
                {
                    "type": "campaign", "schema": 99, "workers": 1,
                    "wall_seconds": 1.0, "shards": 0,
                },
                "schema version",
            ),
            (
                {
                    "type": "campaign", "schema": SCHEMA_VERSION, "workers": 0,
                    "wall_seconds": 1.0, "shards": 0,
                },
                "workers",
            ),
            (
                {
                    "type": "counter", "shard": "x", "name": "n",
                    "value": float("nan"),
                },
                "finite",
            ),
        ],
    )
    def test_validate_record_rejects(self, obj, match):
        with pytest.raises(ValueError, match=match):
            validate_record(obj)

    def test_file_invariants(self, tmp_path):
        def write_lines(objs):
            path = tmp_path / "bad.jsonl"
            path.write_text("".join(json.dumps(o) + "\n" for o in objs))
            return path

        header = {
            "type": "campaign", "schema": SCHEMA_VERSION, "workers": 1,
            "wall_seconds": 1.0, "shards": 0,
        }
        shard = {
            "type": "shard", "shard": "a", "status": "ok", "seed": 1,
            "wall_seconds": 1.0,
        }
        with pytest.raises(ValueError, match="empty"):
            validate_trace_file(write_lines([]))
        with pytest.raises(ValueError, match="first record"):
            validate_trace_file(write_lines([shard]))
        with pytest.raises(ValueError, match="declares 0 shards"):
            validate_trace_file(write_lines([header, shard]))
        with pytest.raises(ValueError, match="undeclared shard"):
            validate_trace_file(
                write_lines(
                    [header, {"type": "counter", "shard": "ghost",
                              "name": "n", "value": 1.0}]
                )
            )
        with pytest.raises(ValueError, match="not JSON"):
            path = tmp_path / "junk.jsonl"
            path.write_text("{not json}\n")
            read_trace(path)

    def test_duplicate_shards_rejected(self, tmp_path):
        header = {
            "type": "campaign", "schema": SCHEMA_VERSION, "workers": 1,
            "wall_seconds": 1.0, "shards": 2,
        }
        shard = {
            "type": "shard", "shard": "a", "status": "ok", "seed": 1,
            "wall_seconds": 1.0,
        }
        path = tmp_path / "dup.jsonl"
        path.write_text(
            "".join(json.dumps(o) + "\n" for o in [header, shard, shard])
        )
        with pytest.raises(ValueError, match="duplicate shard"):
            validate_trace_file(path)


class TestSummary:
    def test_aggregate_spans_paths(self):
        spans = _sample_spans()
        aggregated = aggregate_spans(spans)
        assert aggregated[("shard",)] == (4.0, 1)
        assert aggregated[("shard", "campaign")] == (3.0, 1)
        assert aggregated[("shard", "fit")] == (0.7, 1)

    def test_aggregate_collapses_repeats(self):
        spans = [
            SpanRecord(name="root", start=0.0, duration=3.0, index=0,
                       parent=-1, depth=0),
        ] + [
            SpanRecord(name="run", start=float(i), duration=1.0, index=i + 1,
                       parent=0, depth=1)
            for i in range(3)
        ]
        aggregated = aggregate_spans(spans)
        assert aggregated[("root", "run")] == (3.0, 3)

    def test_render_shard_summary(self):
        out = render_shard_summary(_sample_report().shards[0])
        assert "shard gtx-titan: ok" in out
        assert "campaign" in out
        assert "fit" in out
        # 3.0s of a 4.1s wall.
        assert "73.2%" in out

    def test_render_shard_summary_without_spans(self):
        shard = SimpleNamespace(
            platform_id="nuc-gpu", status="ok", wall_seconds=1.0,
            n_runs=0, spans=(),
        )
        out = render_shard_summary(shard)
        assert "no spans recorded; run with tracing enabled" in out

    def test_render_shard_summary_failed_shard(self):
        # A failed shard cannot ship its recorder back, so the fallback
        # must not suggest tracing was off.
        shard = SimpleNamespace(
            platform_id="nuc-gpu", status="failed", wall_seconds=1.0,
            n_runs=0, spans=(),
        )
        out = render_shard_summary(shard)
        assert "no spans recorded; shard failed" in out
        assert "tracing enabled" not in out

    def test_render_summary(self):
        out = render_summary(_sample_report())
        assert "2 workers" in out
        assert "parallel efficiency 45.6%" in out
        assert "shard gtx-titan" in out
