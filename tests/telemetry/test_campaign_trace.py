"""Integration: telemetry threaded through shards, pools and the CLI.

The two acceptance properties: (1) the default no-op recorder leaves
campaign results bit-for-bit identical to a traced run -- tracing is
pure observation; (2) a traced campaign's spans survive the
process-pool boundary, serialise to valid JSONL, and account for the
shard's wall time (root span duration never exceeds the reported
``wall_seconds``).
"""

import pytest

from repro.microbench.campaign import CampaignRunner, ShardSpec, run_shard
from repro.telemetry.jsonl import read_spans, validate_trace_file, write_trace
from repro.telemetry.summary import render_summary

QUICK = dict(
    replicates=1,
    points_per_octave=2,
    target_duration=0.1,
    include_double=False,
    include_cache=False,
    include_chase=False,
)


def _spec(platform_id="gtx-titan", trace=False, **overrides):
    return ShardSpec(
        platform_id=platform_id, seed=99, trace=trace, **{**QUICK, **overrides}
    )


class TestTraceParity:
    def test_tracing_is_bit_identical(self):
        """Spans observe; they must never perturb the physics or the
        noise streams."""
        fit_off, report_off = run_shard(_spec(trace=False))
        fit_on, report_on = run_shard(_spec(trace=True))
        assert (
            fit_off.campaign.all_observations
            == fit_on.campaign.all_observations
        )
        assert (
            fit_off.capped.params.tau_flop == fit_on.capped.params.tau_flop
        )
        assert fit_off.capped.params.pi1 == fit_on.capped.params.pi1
        assert report_off.n_runs == report_on.n_runs

    def test_untraced_shard_ships_no_spans(self):
        _, report = run_shard(_spec(trace=False))
        assert report.spans == ()
        assert report.trace_bytes == 0

    def test_traced_shard_ships_spans(self):
        _, report = run_shard(_spec(trace=True))
        assert report.spans
        assert report.trace_bytes > 0
        names = {span.name for span in report.spans}
        # The full instrumented stack, root to leaf.
        assert {"shard", "campaign", "sweep", "run", "calibrate",
                "engine", "measure", "fit"} <= names

    def test_root_span_within_reported_wall(self):
        _, report = run_shard(_spec(trace=True))
        roots = [span for span in report.spans if span.parent == -1]
        assert len(roots) == 1
        assert roots[0].name == "shard"
        assert 0.0 < roots[0].duration <= report.wall_seconds

    def test_children_nest_within_root(self):
        _, report = run_shard(_spec(trace=True))
        (root,) = [span for span in report.spans if span.parent == -1]
        children = [
            span for span in report.spans if span.parent == root.index
        ]
        assert children
        assert sum(span.duration for span in children) <= root.duration
        for span in children:
            assert span.start >= root.start
            assert span.end <= root.end + 1e-9


class TestPoolMerge:
    def test_spans_cross_the_pool_boundary(self, tmp_path):
        ids = ("gtx-titan", "nuc-gpu")
        runner = CampaignRunner(ids, max_workers=2, trace=True, **QUICK)
        fits = runner.run()
        report = runner.report
        assert set(fits) == set(ids)
        assert report.traced
        assert report.trace_bytes > 0
        for shard in report.shards:
            assert shard.spans, f"{shard.platform_id} shipped no spans"
            (root,) = [s for s in shard.spans if s.parent == -1]
            assert root.duration <= shard.wall_seconds

        path = tmp_path / "trace.jsonl"
        lines = write_trace(path, report)
        assert validate_trace_file(path) == lines
        by_shard = read_spans(path)
        assert set(by_shard) == set(ids)
        for shard in report.shards:
            assert tuple(by_shard[shard.platform_id]) == tuple(
                sorted(shard.spans, key=lambda s: (s.start, s.index))
            )

    def test_trace_off_by_default(self):
        runner = CampaignRunner(("gtx-titan",), max_workers=1, **QUICK)
        runner.run()
        assert not runner.report.traced
        assert runner.report.trace_bytes == 0

    def test_summary_renders_traced_campaign(self):
        runner = CampaignRunner(
            ("gtx-titan",), max_workers=1, trace=True, **QUICK
        )
        runner.run()
        out = render_summary(runner.report)
        assert "shard gtx-titan" in out
        assert "campaign" in out
        assert "fit" in out


class TestCampaignCli:
    def test_trace_and_progress_flags(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "trace.jsonl"
        code = main(
            [
                "campaign", "gtx-titan", "nuc-gpu", "--quick",
                "--workers", "2", "--trace", str(path), "--progress",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "trace:" in captured.out
        assert "parallel efficiency" in captured.out
        # Progress lines go to stderr, one per shard, numbered.
        assert "[1/2]" in captured.err
        assert "[2/2]" in captured.err
        assert validate_trace_file(path) > 0
