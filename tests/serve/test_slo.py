"""SLO suite: the service under load, with deflaked latency bounds.

Acceptance criteria (the Issue 8 contract):

* >= 32 concurrent closed-loop clients complete their runs with every
  response a 200;
* mean achieved batch width >= 4 (coalescing actually happened, it is
  not a degenerate one-request-per-batch service);
* p99 latency within the documented bound;
* every served prediction is bit-identical to the unbatched
  ``Engine.run`` oracle.

Deflaking policy (two tiers)
----------------------------
Latency assertions are where load tests go to flake: CI machines are
noisy, oversubscribed and occasionally an order of magnitude slower
than a dev box.  The *correctness* assertions (status codes, batch
widths, bit-identity) are deterministic and always strict.  The
*latency* assertions come in two tiers:

``CI tier`` (default)
    p99 <= 2.0 s, p50 <= 1.0 s.  Generous by an order of magnitude
    over observed dev-box numbers (p99 ~ 15 ms): they only fail when
    the service genuinely stalls (a deadlock, a lost future, an
    unflushed batch), never from scheduler jitter.
``strict tier`` (ARCHLINE_SLO_STRICT=1)
    p99 <= 0.25 s, p50 <= 0.10 s.  For dev boxes and perf triage;
    env-gated so a slow CI runner cannot flake the default suite.

Wall-clock guidance: the whole module completes in ~2 s on a dev box.
"""

from __future__ import annotations

import asyncio
import os

from repro.serve import PredictServer
from repro.serve.loadgen import (
    fetch_stats,
    generate_mix,
    run_closed_loop,
    run_open_loop,
)

from .conftest import oracle_prediction

STRICT = os.environ.get("ARCHLINE_SLO_STRICT") == "1"

#: (p50, p99) latency bounds in seconds for the active tier.
P50_BOUND, P99_BOUND = (0.10, 0.25) if STRICT else (1.0, 2.0)

N_CLIENTS = 32
REQUESTS_PER_CLIENT = 6
MIN_MEAN_WIDTH = 4.0


def test_closed_loop_slo():
    """The acceptance run: 32 closed-loop clients, six requests each,
    against one server; throughput comes from coalescing."""

    async def main():
        async with PredictServer(
            port=0, max_batch=N_CLIENTS, linger_us=3000
        ) as server:
            report = await run_closed_loop(
                "127.0.0.1",
                server.port,
                n_clients=N_CLIENTS,
                requests_per_client=REQUESTS_PER_CLIENT,
                seed=2014,
            )
            stats = await fetch_stats("127.0.0.1", server.port)
            oracle = {}
            for query, _ in report.exchanges:
                key = repr(sorted(query.items()))
                if key not in oracle:
                    oracle[key] = oracle_prediction(server, query)
            return report, stats, oracle

    report, stats, oracle = asyncio.run(main())

    # -- correctness: always strict -------------------------------------
    total = N_CLIENTS * REQUESTS_PER_CLIENT
    assert report.n_requests == total
    assert report.statuses == {200: total}
    for query, body in report.exchanges:
        key = repr(sorted(query.items()))
        assert body["prediction"] == oracle[key], query

    # -- batching: always strict ----------------------------------------
    batch = stats["batch"]
    assert batch["batches"] >= 1
    assert batch["mean_width"] >= MIN_MEAN_WIDTH
    assert batch["max_width"] <= N_CLIENTS
    assert batch["batched_requests"] >= total
    # Coalescing saved engine dispatches: far fewer vectorised calls
    # than requests.
    assert batch["engine_batches"] < total

    # -- latency: tiered (see module docstring) -------------------------
    assert report.p50 <= P50_BOUND, report.describe()
    assert report.p99 <= P99_BOUND, report.describe()


def test_open_loop_smoke():
    """Open-loop arrivals at a sustainable rate: everything answered,
    nothing queues unboundedly."""

    async def main():
        async with PredictServer(
            port=0, max_batch=16, linger_us=2000
        ) as server:
            report = await run_open_loop(
                "127.0.0.1",
                server.port,
                rate_rps=300.0,
                n_requests=48,
                seed=11,
            )
            return report, server.stats()

    report, stats = asyncio.run(main())
    assert report.n_requests == 48
    assert report.statuses == {200: 48}
    assert stats["batch"]["batched_requests"] == 48
    assert report.p99 <= P99_BOUND, report.describe()


def test_deterministic_mix_is_replayable():
    """The load the SLO run offers is a function of its seed alone --
    reruns face the identical workload, a precondition for treating
    latency drift as signal."""
    assert generate_mix(64, seed=2014) == generate_mix(64, seed=2014)
    assert generate_mix(64, seed=2014) != generate_mix(64, seed=2015)
