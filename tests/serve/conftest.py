"""Shared helpers for the serve suite.

Every test here drives a real :class:`~repro.serve.server.PredictServer`
over real sockets (loopback, ephemeral ports) -- the suite's whole
point is proving the *service*, not its pieces in isolation.  Tests
are plain sync functions running their scenario through
``asyncio.run`` (the repo does not assume pytest-asyncio), so each
test gets a fresh event loop and cannot leak loop state into its
neighbours.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Awaitable, Callable

from repro.serve import PredictServer
from repro.serve.loadgen import HttpClient
from repro.serve.protocol import (
    build_kernel,
    encode_prediction,
    parse_predict_body,
)

__all__ = [
    "drive",
    "oracle_prediction",
    "post_predict",
]


def drive(
    scenario: Callable[[PredictServer], Awaitable[Any]],
    **server_kwargs: Any,
) -> Any:
    """Run ``scenario(server)`` against a live server on a fresh loop.

    The server binds an ephemeral loopback port and is shut down
    gracefully (drain + batcher flush) before the loop closes, so a
    failing scenario cannot leave sockets behind.
    """

    async def main() -> Any:
        async with PredictServer(port=0, **server_kwargs) as server:
            return await scenario(server)

    return asyncio.run(main())


async def post_predict(
    port: int, query: dict[str, Any]
) -> tuple[int, dict[str, Any]]:
    """One ``POST /predict`` on a throwaway connection."""
    client = HttpClient("127.0.0.1", port)
    try:
        return await client.request("POST", "/predict", query, close=True)
    finally:
        await client.close()


def oracle_prediction(
    server: PredictServer, query: dict[str, Any]
) -> dict[str, Any]:
    """The unbatched ground truth for ``query``: the same resolver and
    engine, driven through scalar ``Engine.run``, encoded by the same
    encoder the server uses.  Batched responses must equal this
    exactly."""
    parsed = parse_predict_body(json.dumps(query).encode("utf-8"))
    engine = server.resolver.engine(parsed)
    kernel = build_kernel(parsed, engine.config)
    return encode_prediction(engine.run(kernel))
