"""Wire-protocol unit tests: parsing, validation codes, encoding.

The fault-path contract is *typed*: every rejection carries a stable
machine-readable ``code`` (asserted here, not the prose), and valid
queries round-trip bit-exactly through JSON -- the property the
differential suite's exact-equality comparisons stand on.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.machine.kernel import DRAM
from repro.machine.platforms import platform
from repro.serve.protocol import (
    KERNEL_IDS,
    MAX_PROBLEM_SIZE,
    PredictQuery,
    ProtocolError,
    build_kernel,
    encode_error,
    encode_prediction,
    encode_response,
    parse_predict_body,
)


def _parse(obj) -> PredictQuery:
    return parse_predict_body(json.dumps(obj).encode("utf-8"))


def _code(obj) -> tuple[int, str]:
    with pytest.raises(ProtocolError) as err:
        _parse(obj)
    return err.value.status, err.value.code


GOOD = {"kernel": "matmul", "platform": "gtx-titan", "n": 1024}


class TestParse:
    def test_minimal_query_fills_defaults(self):
        query = _parse(GOOD)
        assert query == PredictQuery(
            kernel="matmul", platform_id="gtx-titan", n=1024.0
        )
        assert query.theta == "truth"
        assert query.precision == "single"
        assert query.power_cap is None

    def test_full_query(self):
        query = _parse(
            {**GOOD, "power_cap": 80.5, "theta": "fitted",
             "precision": "double"}
        )
        assert query.power_cap == 80.5
        assert query.theta == "fitted"
        assert query.precision == "double"

    def test_every_catalogue_kernel_parses(self):
        for kernel in KERNEL_IDS:
            assert _parse({**GOOD, "kernel": kernel}).kernel == kernel

    def test_echo_round_trips_through_json(self):
        query = _parse({**GOOD, "n": 0.1 + 0.2, "power_cap": 1e-3})
        echoed = json.loads(json.dumps(query.echo()))
        assert echoed["n"] == query.n  # bit-exact, not approximate
        assert echoed["power_cap"] == query.power_cap


class TestRejections:
    def test_not_json(self):
        with pytest.raises(ProtocolError) as err:
            parse_predict_body(b"{nope")
        assert (err.value.status, err.value.code) == (400, "bad_json")

    def test_non_object_body(self):
        assert _code([1, 2, 3]) == (400, "bad_request")

    def test_missing_fields(self):
        assert _code({"kernel": "matmul"}) == (400, "bad_request")

    def test_unknown_field(self):
        assert _code({**GOOD, "frequency": 2.0}) == (400, "bad_request")

    def test_unknown_kernel_is_404(self):
        assert _code({**GOOD, "kernel": "dgemm"}) == (404, "unknown_kernel")

    def test_unknown_platform_is_404(self):
        assert _code({**GOOD, "platform": "cray-1"}) == (
            404,
            "unknown_platform",
        )

    @pytest.mark.parametrize(
        "n", [0, -5, "big", True, math.inf, MAX_PROBLEM_SIZE * 10]
    )
    def test_bad_sizes(self, n):
        assert _code({**GOOD, "n": n}) == (400, "bad_size")

    @pytest.mark.parametrize("cap", [0.0, -1.0, "80W", math.nan])
    def test_bad_power_caps(self, cap):
        assert _code({**GOOD, "power_cap": cap}) == (400, "bad_power_cap")

    def test_null_power_cap_means_uncapped(self):
        assert _parse({**GOOD, "power_cap": None}).power_cap is None

    def test_bad_theta(self):
        assert _code({**GOOD, "theta": "guessed"}) == (400, "bad_theta")

    def test_bad_precision(self):
        assert _code({**GOOD, "precision": "half"}) == (400, "bad_precision")


class TestBuildKernel:
    def test_matmul_counts_are_algorithmic(self):
        config = platform("gtx-titan")
        kernel = build_kernel(_parse({**GOOD, "n": 512}), config)
        assert kernel.flops == pytest.approx(2 * 512**3, rel=1e-12)
        assert kernel.traffic[DRAM] > 0
        assert kernel.precision == "single"

    def test_traffic_depends_on_platform_cache(self):
        """The same query has different Q(n; Z) on machines with
        different fast-memory sizes -- the cache-aware path works."""
        big = build_kernel(_parse({**GOOD, "n": 4096}), platform("gtx-titan"))
        small = build_kernel(
            _parse({**GOOD, "n": 4096}), platform("arndale-gpu")
        )
        assert big.traffic[DRAM] != small.traffic[DRAM]

    def test_double_on_gpu_without_double_costs_is_typed(self):
        config = platform("gtx-titan")
        if config.truth.tau_flop_double is not None:
            pytest.skip("platform models double precision")
        with pytest.raises(ProtocolError) as err:
            build_kernel(_parse({**GOOD, "precision": "double"}), config)
        assert err.value.code == "unsupported_precision"


class TestEncoding:
    def test_prediction_fields(self):
        from repro.machine.engine import Engine

        config = platform("gtx-titan")
        engine = Engine(config, rng=None)
        kernel = build_kernel(_parse(GOOD), config)
        pred = encode_prediction(engine.run(kernel))
        assert set(pred) == {
            "time_s", "energy_j", "avg_power_w", "ideal_time_s",
            "throttled", "flops", "dram_bytes",
        }
        assert pred["time_s"] > 0
        assert pred["energy_j"] > 0
        # JSON-safe: every value must survive strict serialisation.
        assert json.loads(json.dumps(pred)) == pred

    def test_response_shape(self):
        from repro.machine.engine import Engine

        config = platform("gtx-titan")
        engine = Engine(config, rng=None)
        query = _parse(GOOD)
        result = engine.run(build_kernel(query, config))
        body = encode_response(query, result, batch_width=7)
        assert body["request"] == query.echo()
        assert body["batch_width"] == 7
        assert body["prediction"] == encode_prediction(result)

    def test_error_shape(self):
        body = encode_error(ProtocolError(400, "bad_size", "too big"))
        assert body == {"error": {"code": "bad_size", "message": "too big"}}
