"""Fitted-theta serving through the campaign store, asserted via
``/stats`` and the ``archline cache`` CLI.

A ``"theta": "fitted"`` query makes the resolver run the Section V-A
campaign+fit pipeline on first touch.  With a store attached, a cold
server *publishes* the campaign and fit entries (misses + puts) and a
warm restart *replays* them (hits, no puts) -- bit-identically, which
the cold-vs-warm prediction comparison asserts.  The same directory
then answers to ``archline cache stats`` / ``verify``, proving the
serve path and the cache CLI share one store format.
"""

from __future__ import annotations

import asyncio

from repro.cli import main as archline_main
from repro.experiments.common import CampaignSettings
from repro.serve import PredictServer, ThetaResolver
from repro.store.store import CampaignStore

from .conftest import post_predict

#: Small platform + shrunken campaign: fitted resolution in ~a second.
QUERY = {
    "kernel": "triad",
    "platform": "arndale-gpu",
    "n": 1e6,
    "theta": "fitted",
}


def _quick_settings() -> CampaignSettings:
    return CampaignSettings(seed=2014).scaled_down()


def _serve_fitted(store: CampaignStore) -> tuple[dict, dict]:
    """One server lifetime: two identical fitted queries; returns the
    (first response body, /stats theta payload)."""

    async def main():
        resolver = ThetaResolver(store=store, settings=_quick_settings())
        async with PredictServer(
            port=0, resolver=resolver, linger_us=500
        ) as server:
            status1, body1 = await post_predict(server.port, QUERY)
            status2, body2 = await post_predict(server.port, QUERY)
            assert status1 == 200, body1
            assert status2 == 200, body2
            assert body1["prediction"] == body2["prediction"]
            return body1, server.stats()["theta"]

    return asyncio.run(main())


def test_cold_then_warm_store_round_trip(tmp_path, capsys):
    cache_dir = str(tmp_path / "store")

    # Cold: the campaign and fit both miss and are published.
    cold_store = CampaignStore(cache_dir)
    cold_body, cold_theta = _serve_fitted(cold_store)
    assert cold_theta["fitted_resolutions"] == 1
    assert cold_theta["fitted_platforms"] == ["arndale-gpu"]
    # One campaign entry + one fit entry.
    assert cold_theta["store"] == {
        "hits": 0, "misses": 2, "stale": 0, "puts": 2,
    }
    # The second request never touched resolution: engine memo hit.
    assert cold_theta["memo_hits"] >= 1

    # Warm: a new server over the same directory replays both entries.
    warm_store = CampaignStore(cache_dir)
    warm_body, warm_theta = _serve_fitted(warm_store)
    assert warm_theta["fitted_resolutions"] == 1
    assert warm_theta["store"] == {
        "hits": 2, "misses": 0, "stale": 0, "puts": 0,
    }

    # Replay is bit-identical: the fitted engine a warm store yields
    # serves the very same prediction.
    assert warm_body["prediction"] == cold_body["prediction"]

    # The serve-populated store answers to the cache CLI.
    assert archline_main(["cache", "stats", "--dir", cache_dir]) == 0
    stats_out = capsys.readouterr().out
    assert "campaign" in stats_out
    assert "fit" in stats_out

    assert archline_main(["cache", "verify", "--dir", cache_dir]) == 0
    verify_out = capsys.readouterr().out.lower()
    assert "all entries verify" in verify_out


def test_truth_queries_never_touch_the_store(tmp_path):
    """Ground-truth serving must not pay (or pollute) the cache."""
    store = CampaignStore(str(tmp_path / "store"))

    async def main():
        resolver = ThetaResolver(store=store, settings=_quick_settings())
        async with PredictServer(
            port=0, resolver=resolver, linger_us=500
        ) as server:
            status, _ = await post_predict(
                server.port, {**QUERY, "theta": "truth"}
            )
            assert status == 200
            return server.stats()["theta"]

    theta = asyncio.run(main())
    assert theta["fitted_resolutions"] == 0
    assert theta["store"] == {"hits": 0, "misses": 0, "stale": 0, "puts": 0}


def test_refresh_recomputes_and_republishes(tmp_path):
    """``--refresh`` semantics at the resolver level: skip lookups,
    recompute, republish over the existing entries."""
    cache_dir = str(tmp_path / "store")
    _serve_fitted(CampaignStore(cache_dir))  # populate

    async def main():
        resolver = ThetaResolver(
            store=CampaignStore(cache_dir),
            settings=_quick_settings(),
            refresh=True,
        )
        async with PredictServer(
            port=0, resolver=resolver, linger_us=500
        ) as server:
            status, _ = await post_predict(server.port, QUERY)
            assert status == 200
            return server.stats()["theta"]

    theta = asyncio.run(main())
    assert theta["store"]["hits"] == 0
    assert theta["store"]["puts"] == 2
