"""Batcher unit tests: coalescing policy and failure containment.

Driven with a duck-typed fake engine so the policy (width ceilings,
engine grouping, scalar fallback, abandoned-future survival) is
asserted without physics in the way; the real-engine bit-identity
property lives in test_differential.py.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.machine.kernel import DRAM, KernelSpec
from repro.serve.batcher import Batcher
from repro.telemetry.recorder import TraceRecorder


def _kernel(name: str = "k", flops: float = 1e6) -> KernelSpec:
    return KernelSpec(name=name, flops=flops, traffic={DRAM: 1e6})


class _FakeBatchResult:
    def __init__(self, results):
        self._results = results

    def result(self, i):
        return self._results[i]


class _FakeEngine:
    """Duck-typed engine: answers with (tag, kernel name) tuples and
    keeps a log of the batch widths it was called with."""

    def __init__(self, tag: str, poison: str | None = None):
        self.tag = tag
        self.poison = poison  #: kernel name whose runs raise.
        self.batch_widths: list[int] = []
        self.scalar_calls = 0

    def run_batch(self, kernels):
        if self.poison is not None and any(
            k.name == self.poison for k in kernels
        ):
            raise ValueError(f"poisoned kernel {self.poison}")
        self.batch_widths.append(len(kernels))
        return _FakeBatchResult([(self.tag, k.name) for k in kernels])

    def run(self, kernel):
        self.scalar_calls += 1
        if kernel.name == self.poison:
            raise ValueError(f"poisoned kernel {self.poison}")
        return (self.tag, kernel.name)


def test_concurrent_submissions_coalesce():
    engine = _FakeEngine("a")

    async def main():
        batcher = Batcher(max_batch=16, linger_us=5000)
        await batcher.start()
        try:
            results = await asyncio.gather(
                *(batcher.submit(engine, _kernel(f"k{i}")) for i in range(8))
            )
        finally:
            await batcher.stop()
        return results

    results = asyncio.run(main())
    assert [r for r, _ in results] == [("a", f"k{i}") for i in range(8)]
    # All eight rode one assembly: every reported width is 8 and the
    # engine saw a single vectorised call.
    assert {width for _, width in results} == {8}
    assert engine.batch_widths == [8]


def test_max_batch_is_a_hard_ceiling():
    engine = _FakeEngine("a")

    async def main():
        batcher = Batcher(max_batch=4, linger_us=50_000)
        await batcher.start()
        try:
            results = await asyncio.gather(
                *(batcher.submit(engine, _kernel(f"k{i}")) for i in range(10))
            )
        finally:
            await batcher.stop()
        return results

    results = asyncio.run(main())
    assert len(results) == 10
    assert all(width <= 4 for _, width in results)
    assert all(w <= 4 for w in engine.batch_widths)
    assert sum(engine.batch_widths) == 10


def test_assemblies_group_by_engine():
    """One assembly, two target engines: one run_batch per engine, and
    reported widths count the whole assembly (traffic, not group)."""
    a, b = _FakeEngine("a"), _FakeEngine("b")

    async def main():
        batcher = Batcher(max_batch=16, linger_us=5000)
        await batcher.start()
        try:
            results = await asyncio.gather(
                batcher.submit(a, _kernel("k0")),
                batcher.submit(b, _kernel("k1")),
                batcher.submit(a, _kernel("k2")),
                batcher.submit(b, _kernel("k3")),
            )
        finally:
            await batcher.stop()
        return results

    results = asyncio.run(main())
    assert a.batch_widths == [2]
    assert b.batch_widths == [2]
    assert {width for _, width in results} == {4}
    assert [r for r, _ in results] == [
        ("a", "k0"), ("b", "k1"), ("a", "k2"), ("b", "k3"),
    ]


def test_poisoned_kernel_fails_alone():
    """A group whose run_batch raises degrades to scalar runs: the
    offender's submit raises, its neighbours still get answers."""
    engine = _FakeEngine("a", poison="bad")

    async def main():
        batcher = Batcher(max_batch=16, linger_us=5000)
        await batcher.start()
        try:
            return await asyncio.gather(
                batcher.submit(engine, _kernel("k0")),
                batcher.submit(engine, _kernel("bad")),
                batcher.submit(engine, _kernel("k2")),
                return_exceptions=True,
            )
        finally:
            await batcher.stop()

    ok0, err, ok2 = asyncio.run(main())
    assert ok0[0] == ("a", "k0")
    assert ok2[0] == ("a", "k2")
    assert isinstance(err, ValueError)
    assert engine.scalar_calls == 3


def test_abandoned_future_does_not_kill_the_batch():
    """A submitter cancelled mid-flight (client disconnect) is skipped
    at completion time; the other riders still get results."""
    engine = _FakeEngine("a")

    async def main():
        batcher = Batcher(max_batch=16, linger_us=20_000)
        await batcher.start()
        try:
            doomed = asyncio.ensure_future(
                batcher.submit(engine, _kernel("gone"))
            )
            survivor = asyncio.ensure_future(
                batcher.submit(engine, _kernel("kept"))
            )
            await asyncio.sleep(0)  # both queued, linger window open
            doomed.cancel()
            result, width = await survivor
            with pytest.raises(asyncio.CancelledError):
                await doomed
            return result, width
        finally:
            await batcher.stop()

    result, width = asyncio.run(main())
    assert result == ("a", "kept")
    assert width == 2  # the abandoned request still rode the assembly


def test_stop_drains_queued_work():
    engine = _FakeEngine("a")

    async def main():
        batcher = Batcher(max_batch=4, linger_us=0)
        await batcher.start()
        futures = [
            asyncio.ensure_future(batcher.submit(engine, _kernel(f"k{i}")))
            for i in range(6)
        ]
        await batcher.stop()
        return await asyncio.gather(*futures)

    results = asyncio.run(main())
    assert len(results) == 6
    assert sum(engine.batch_widths) == 6


def test_stats_track_widths():
    engine = _FakeEngine("a")

    async def main():
        batcher = Batcher(max_batch=8, linger_us=5000)
        await batcher.start()
        try:
            await asyncio.gather(
                *(batcher.submit(engine, _kernel(f"k{i}")) for i in range(6))
            )
            await batcher.submit(engine, _kernel("solo"))
        finally:
            await batcher.stop()
        return batcher.stats

    stats = asyncio.run(main())
    assert stats.batches == 2
    assert stats.batched_requests == 7
    assert stats.max_width == 6
    assert stats.mean_width == pytest.approx(3.5)
    assert stats.engine_batches == 2
    assert stats.scalar_fallbacks == 0


def test_batch_assemble_spans_record_width():
    engine = _FakeEngine("a")
    recorder = TraceRecorder()

    async def main():
        batcher = Batcher(max_batch=8, linger_us=5000, recorder=recorder)
        await batcher.start()
        try:
            await asyncio.gather(
                *(batcher.submit(engine, _kernel(f"k{i}")) for i in range(5))
            )
        finally:
            await batcher.stop()

    asyncio.run(main())
    assembles = [
        r for r in recorder.records() if r.name == "batch_assemble"
    ]
    assert len(assembles) == 1
    # Recorder meta values are stringified (key, value) pairs.
    assert dict(assembles[0].meta)["width"] == "5"


def test_constructor_validation():
    with pytest.raises(ValueError):
        Batcher(max_batch=0)
    with pytest.raises(ValueError):
        Batcher(linger_us=-1)


def test_submit_before_start_raises():
    async def main():
        with pytest.raises(RuntimeError):
            await Batcher().submit(_FakeEngine("a"), _kernel())

    asyncio.run(main())
