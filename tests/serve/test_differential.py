"""Differential test: batched service responses == unbatched oracle.

Property: for *any* valid request mix fired concurrently at the
service -- random kernels, platforms, sizes, power caps -- every
response's ``prediction`` object is **value-identical** (exact dict
equality, which for JSON-round-tripped floats means bit-identical) to
what a direct, unbatched ``Engine.run`` produces for the same query.
Coalescing must be invisible to clients.

Hypothesis runs under the repo's derandomized "repro" profile
(tests/conftest.py), and one server instance serves every example:
engines are memoised per (platform, theta, power_cap), so the examples
share the warm resolver exactly like production traffic would.
"""

from __future__ import annotations

import asyncio

from hypothesis import given, settings, strategies as st

from repro.serve import PredictServer
from repro.serve.loadgen import DEFAULT_SIZES
from repro.serve.protocol import KERNEL_IDS

from .conftest import oracle_prediction, post_predict

#: Platform subset spanning the architectural extremes: a big
#: discrete GPU, a low-power SoC GPU, and a desktop CPU.
PLATFORMS = ("gtx-titan", "arndale-gpu", "desktop-cpu")

query_strategy = st.fixed_dictionaries(
    {
        "kernel": st.sampled_from(KERNEL_IDS),
        "platform": st.sampled_from(PLATFORMS),
        # Size index into the kernel's bounded menu (drawn per-kernel
        # below so every query stays inside the service's simulated-
        # duration bound on every platform).
        "size_index": st.integers(min_value=0, max_value=2),
        "power_cap": st.one_of(
            st.none(), st.floats(min_value=2.0, max_value=200.0)
        ),
    }
).map(
    lambda raw: {
        "kernel": raw["kernel"],
        "platform": raw["platform"],
        "n": DEFAULT_SIZES[raw["kernel"]][raw["size_index"]],
        **(
            {"power_cap": raw["power_cap"]}
            if raw["power_cap"] is not None
            else {}
        ),
    }
)


_SERVER: PredictServer | None = None
_LOOP: asyncio.AbstractEventLoop | None = None


def setup_module() -> None:
    """One live server for the whole module: hypothesis fires hundreds
    of example batches and per-example server spin-up would dominate
    the run (and defeat the warm-resolver realism)."""
    global _SERVER, _LOOP
    _LOOP = asyncio.new_event_loop()
    _SERVER = PredictServer(port=0, max_batch=16, linger_us=1500)
    _LOOP.run_until_complete(_SERVER.start())


def teardown_module() -> None:
    global _SERVER, _LOOP
    assert _SERVER is not None and _LOOP is not None
    _LOOP.run_until_complete(_SERVER.stop())
    _LOOP.close()
    _SERVER = None
    _LOOP = None


@settings(max_examples=20, deadline=None)
@given(mix=st.lists(query_strategy, min_size=1, max_size=10))
def test_batched_responses_match_unbatched_oracle(mix):
    server, loop = _SERVER, _LOOP
    assert server is not None and loop is not None

    async def fire():
        return await asyncio.gather(
            *(post_predict(server.port, query) for query in mix)
        )

    answers = loop.run_until_complete(fire())
    for query, (status, body) in zip(mix, answers):
        assert status == 200, body
        assert body["prediction"] == oracle_prediction(server, query)
        assert body["request"]["kernel"] == query["kernel"]
        assert body["request"]["n"] == query["n"]
        assert body["batch_width"] >= 1


@settings(max_examples=10, deadline=None)
@given(
    query=query_strategy,
    copies=st.integers(min_value=2, max_value=8),
)
def test_identical_concurrent_queries_identical_answers(query, copies):
    """N copies of one query in one batch window: N identical bodies
    (same engine, same kernel -- one vectorised group)."""
    server, loop = _SERVER, _LOOP
    assert server is not None and loop is not None

    async def fire():
        return await asyncio.gather(
            *(post_predict(server.port, query) for _ in range(copies))
        )

    answers = loop.run_until_complete(fire())
    predictions = [body["prediction"] for status, body in answers]
    assert all(status == 200 for status, _ in answers)
    assert all(p == predictions[0] for p in predictions)
    assert predictions[0] == oracle_prediction(server, query)


def test_power_cap_changes_the_answer():
    """Sanity anchor for the cap path the property tests exercise: a
    tight cap must actually throttle (differential equality would also
    'pass' if caps were silently ignored)."""
    server, loop = _SERVER, _LOOP
    assert server is not None and loop is not None

    # Long enough (tens of governor periods) for the control loop to
    # actually engage; sub-period kernels finish before it can react.
    query = {"kernel": "matmul", "platform": "gtx-titan", "n": 4096.0}

    async def fire():
        free = await post_predict(server.port, query)
        capped = await post_predict(
            server.port, {**query, "power_cap": 40.0}
        )
        return free, capped

    (s1, free), (s2, capped) = loop.run_until_complete(fire())
    assert s1 == 200 and s2 == 200
    assert capped["prediction"]["throttled"]
    assert capped["prediction"]["time_s"] > free["prediction"]["time_s"]
    assert capped["prediction"]["avg_power_w"] < (
        free["prediction"]["avg_power_w"]
    )
