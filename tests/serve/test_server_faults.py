"""Fault-path tests: every client error is a typed 4xx, and none of
them hurts anyone else.

The contract under test: malformed JSON, out-of-catalogue names,
oversized bodies, wrong methods and mid-request disconnects each map
to a stable machine-readable error code (or a counted disconnect) --
and the server keeps answering afterwards, including for requests
sharing the very batch window the fault landed in.
"""

from __future__ import annotations

import asyncio
import json

from repro.serve.loadgen import HttpClient

from .conftest import drive, post_predict

GOOD = {"kernel": "triad", "platform": "gtx-titan", "n": 1e6}


def _error_code(body: dict) -> str:
    return body["error"]["code"]


class TestTypedRejections:
    def test_malformed_json_is_400(self):
        # A raw non-JSON body, hand-framed over a bare socket.
        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            payload = b"{not json"
            writer.write(
                b"POST /predict HTTP/1.1\r\n"
                b"Content-Length: %d\r\n\r\n%s" % (len(payload), payload)
            )
            await writer.drain()
            line = await reader.readline()
            status = int(line.split()[1])
            length = 0
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n"):
                    break
                name, _, value = header.decode().partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value.strip())
            body = json.loads(await reader.readexactly(length))
            writer.close()
            return status, body, server.stats()

        status, body, stats = drive(scenario)
        assert status == 400
        assert _error_code(body) == "bad_json"
        assert stats["errors"] == {"bad_json": 1}

    def test_unknown_kernel_is_404(self):
        async def scenario(server):
            return await post_predict(
                server.port, {**GOOD, "kernel": "linpack"}
            )

        status, body = drive(scenario)
        assert status == 404
        assert _error_code(body) == "unknown_kernel"

    def test_unknown_platform_is_404(self):
        async def scenario(server):
            return await post_predict(
                server.port, {**GOOD, "platform": "enigma"}
            )

        status, body = drive(scenario)
        assert status == 404
        assert _error_code(body) == "unknown_platform"

    def test_oversized_body_is_413_and_closes(self):
        async def scenario(server):
            client = HttpClient("127.0.0.1", server.port)
            try:
                status, body = await client.request(
                    "POST", "/predict", {**GOOD, "kernel": "x" * 3000}
                )
                # The connection must be gone: the server refused to
                # read the oversized body, so the stream is dead.
                try:
                    await client.request("GET", "/healthz")
                    reusable = True
                except (ConnectionError, asyncio.IncompleteReadError):
                    reusable = False
                return status, body, reusable
            finally:
                await client.close()

        status, body, reusable = drive(scenario, max_body_bytes=1024)
        assert status == 413
        assert _error_code(body) == "body_too_large"
        assert not reusable

    def test_wrong_method_is_405(self):
        async def scenario(server):
            client = HttpClient("127.0.0.1", server.port)
            try:
                return await client.request("GET", "/predict", close=True)
            finally:
                await client.close()

        status, body = drive(scenario)
        assert status == 405
        assert _error_code(body) == "bad_method"

    def test_unknown_route_is_404(self):
        async def scenario(server):
            client = HttpClient("127.0.0.1", server.port)
            try:
                return await client.request("GET", "/metrics", close=True)
            finally:
                await client.close()

        status, body = drive(scenario)
        assert status == 404
        assert _error_code(body) == "not_found"

    def test_query_too_large_is_typed(self):
        """A valid query whose simulated duration exceeds the service
        bound is refused up front, not simulated."""

        async def scenario(server):
            return await post_predict(
                server.port, {**GOOD, "kernel": "matmul", "n": 1e6}
            )

        status, body = drive(scenario, max_simulated_seconds=0.5)
        assert status == 400
        assert _error_code(body) == "query_too_large"

    def test_unsupported_precision_is_typed(self):
        async def scenario(server):
            return await post_predict(
                server.port,
                {**GOOD, "platform": "nuc-gpu", "precision": "double"},
            )

        status, body = drive(scenario)
        # nuc-gpu models no double-precision cost in Table I.
        assert status == 400
        assert _error_code(body) == "unsupported_precision"


class TestFaultIsolation:
    def test_errors_do_not_kill_the_connection(self):
        """Keep-alive survives request-level (non-framing) errors: a
        404 kernel then a good query on the same connection."""

        async def scenario(server):
            client = HttpClient("127.0.0.1", server.port)
            try:
                bad = await client.request(
                    "POST", "/predict", {**GOOD, "kernel": "nope"}
                )
                good = await client.request("POST", "/predict", GOOD)
            finally:
                await client.close()
            return bad, good

        (bad_status, _), (good_status, good_body) = drive(scenario)
        assert bad_status == 404
        assert good_status == 200
        assert good_body["prediction"]["time_s"] > 0

    def test_mid_request_disconnect_spares_the_batch(self):
        """A client that vanishes after half a body is a counted
        disconnect; a concurrent good request in the same batch window
        still gets its 200."""

        async def scenario(server):
            async def vanisher():
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                payload = json.dumps(GOOD).encode()
                writer.write(
                    b"POST /predict HTTP/1.1\r\n"
                    b"Content-Length: %d\r\n\r\n" % (len(payload) * 2)
                )
                writer.write(payload)  # half the promised body
                await writer.drain()
                await asyncio.sleep(0.01)
                writer.close()  # gone, mid-request

            async def survivor():
                return await post_predict(server.port, GOOD)

            _, result = await asyncio.gather(vanisher(), survivor())
            # The disconnect is only counted once the reader hits EOF;
            # give the handler a beat to observe it.
            for _ in range(50):
                if server.disconnects:
                    break
                await asyncio.sleep(0.01)
            return result, server.stats()

        (status, body), stats = drive(scenario, linger_us=20_000)
        assert status == 200
        assert body["prediction"]["energy_j"] > 0
        assert stats["server"]["disconnects"] == 1

    def test_server_keeps_serving_after_fault_storm(self):
        """A burst of every fault class, then a clean request: the
        service answers it and the error counters add up."""

        async def scenario(server):
            faults = [
                {**GOOD, "kernel": "nope"},
                {**GOOD, "platform": "nope"},
                {**GOOD, "n": -1},
                {**GOOD, "power_cap": -5},
                {**GOOD, "theta": "vibes"},
            ]
            for query in faults:
                status, _ = await post_predict(server.port, query)
                assert status in (400, 404)
            ok = await post_predict(server.port, GOOD)
            return ok, server.stats()

        (status, body), stats = drive(scenario)
        assert status == 200
        assert body["batch_width"] >= 1
        assert sum(stats["errors"].values()) == 5
        assert set(stats["errors"]) == {
            "unknown_kernel", "unknown_platform", "bad_size",
            "bad_power_cap", "bad_theta",
        }
