"""Serve telemetry: spans thread through the request path, and the
exported JSONL validates against the campaign trace schema.

The server exports its whole run as one pseudo-shard named "serve", so
the existing validator, reader and flame summary (docs/TELEMETRY.md)
work on service traces with zero schema changes -- asserted here by
round-tripping through the real ``validate_trace_file``/``read_spans``.
"""

from __future__ import annotations

import asyncio

from repro.serve import PredictServer
from repro.serve.server import write_serve_trace
from repro.telemetry.jsonl import read_spans, validate_trace_file
from repro.telemetry.recorder import TraceRecorder

from .conftest import post_predict

QUERY = {"kernel": "spmv", "platform": "nuc-gpu", "n": 1e5}


def _run_traced(n_requests: int) -> TraceRecorder:
    recorder = TraceRecorder()

    async def main():
        async with PredictServer(
            port=0, linger_us=2000, recorder=recorder
        ) as server:
            answers = await asyncio.gather(
                *(post_predict(server.port, QUERY) for _ in range(n_requests))
            )
            assert all(status == 200 for status, _ in answers)

    asyncio.run(main())
    return recorder


def test_request_path_spans():
    recorder = _run_traced(n_requests=4)
    names = [record.name for record in recorder.records()]
    # One request + respond span pair per request ...
    assert names.count("request") == 4
    assert names.count("respond") == 4
    # ... batching spans from the dispatcher and engine underneath.
    assert names.count("batch_assemble") >= 1
    assert "engine_batch" in names


def test_spans_nest_strictly():
    """No span is held across an await: every record's depth/parent
    chain is consistent (the recorder would have raised otherwise),
    and top-level spans never interleave."""
    recorder = _run_traced(n_requests=3)
    for record in recorder.records():
        if record.parent == -1:  # top-level span
            assert record.depth == 0
        else:
            assert record.depth > 0
            assert 0 <= record.parent < record.index


def test_trace_file_round_trip(tmp_path):
    recorder = _run_traced(n_requests=5)
    path = tmp_path / "serve_trace.jsonl"
    lines = write_serve_trace(path, recorder, wall_seconds=1.25)
    assert lines > 0
    validate_trace_file(path)  # raises on any schema violation
    spans = read_spans(path)
    assert set(spans) == {"serve"}
    names = {span.name for span in spans["serve"]}
    assert {"request", "respond", "batch_assemble"} <= names
