"""Cross-layer integration tests.

These tie the whole stack together: engine physics vs closed-form
model on the real platforms, measurement fidelity end to end, and the
full campaign -> fit -> error-analysis chain behaving like the paper
describes.
"""

import numpy as np
import pytest

from repro.core import model
from repro.machine.engine import Engine
from repro.machine.kernel import DRAM, KernelSpec
from repro.machine.platforms import PLATFORM_IDS, platform
from repro.measurement.energy import MeasurementRig
from repro.measurement.powermon import PowerMon


@pytest.mark.parametrize("pid", PLATFORM_IDS)
class TestEngineTracksModelPerPlatform:
    """Noise-free engine runs agree with the capped model within the
    second-order effects (ridge rounding, governor undershoot, guard
    band, utilisation scaling) on every platform."""

    def test_time_within_second_order_envelope(self, pid):
        cfg = platform(pid)
        engine = Engine(cfg, rng=None)
        Q = 1e9
        for exponent in (-2, 0, 2, 5, 8):
            I = 2.0 ** exponent
            kernel = KernelSpec(
                name=f"probe[{I}]", flops=I * Q, traffic={DRAM: Q}
            )
            result = engine.run(kernel)
            expected = float(model.time(cfg.truth, kernel.flops, Q))
            ratio = result.wall_time / expected
            # Never meaningfully faster than the model (utilisation
            # scaling can shave energy, and hence cap-bound time, by up
            # to the slope), never slower than rounding+guard explain.
            slope = cfg.effects.utilisation_energy_slope
            assert ratio >= 1.0 - slope - 0.02, (pid, I, ratio)
            ceiling = (
                2.0 ** cfg.effects.ridge_smoothing
                / (1.0 - cfg.effects.cap_guard_band)
                * 1.06
            )
            assert ratio <= ceiling, (pid, I, ratio)

    def test_measured_energy_tracks_trace(self, pid):
        cfg = platform(pid)
        engine = Engine(cfg, rng=None)
        rig = MeasurementRig(cfg, powermon=PowerMon(resolution=0.0))
        kernel = KernelSpec(name="probe", flops=4e9, traffic={DRAM: 1e9})
        result = engine.run(kernel)
        measured = rig.measure(result.trace)
        assert measured.energy == pytest.approx(result.true_energy, rel=0.02)
        assert measured.wall_time == pytest.approx(result.wall_time)


class TestPipelineSanity:
    def test_fig4_conclusion_stable_across_seeds(self):
        """The headline Fig. 4 conclusion (capped model no worse) is a
        property of the system, not of one seed."""
        from repro.core.errors import compare_models
        from repro.experiments.common import CampaignSettings, run_platform_fit

        for seed in (1, 99):
            fp = run_platform_fit(
                "arndale-cpu", CampaignSettings(seed=seed, replicates=2)
            )
            cmp = compare_models(
                fp.uncapped, fp.capped, fp.fit_observations, platform="a"
            )
            assert cmp.capped.stats.iqr <= cmp.uncapped.stats.iqr
            assert cmp.uncapped.median > 0

    def test_campaign_energy_conservation(self):
        """Measured energy across a campaign equals avg power x time
        per run (the estimator's defining identity)."""
        from repro.microbench.suite import run_campaign

        campaign = run_campaign(
            platform("nuc-cpu"), seed=5, replicates=1, include_double=False
        )
        for obs in campaign.all_observations:
            assert obs.energy == pytest.approx(
                obs.avg_power * obs.wall_time, rel=1e-9
            )

    def test_throttled_runs_flagged_only_in_cap_region(self):
        """The governor's throttle flag agrees with the model's regime
        classification on a clean platform."""
        from repro.core.model import Regime

        cfg = platform("gtx-680")
        engine = Engine(cfg, rng=None)
        Q = 1e9
        for exponent in np.linspace(-2, 8, 15):
            I = float(2.0 ** exponent)
            kernel = KernelSpec(name="k", flops=I * Q, traffic={DRAM: Q})
            result = engine.run(kernel)
            regime = model.regime(cfg.truth, I)
            if regime == Regime.CAP:
                assert result.throttled, I
            # Near-boundary points may throttle due to ridge rounding,
            # so the converse is only checked far from the cap region.
            lower, upper = (
                cfg.truth.time_balance_lower,
                cfg.truth.time_balance_upper,
            )
            if I < lower / 2 or I > upper * 2:
                assert not result.throttled, I

    def test_observed_max_power_close_to_annotation(self):
        """The campaign's highest observed power approaches pi1 +
        delta_pi (Fig. 5's normalisation makes sense)."""
        from repro.microbench.suite import run_campaign

        cfg = platform("gtx-titan")
        campaign = run_campaign(
            cfg, seed=4, replicates=1, include_double=False
        )
        max_power = max(o.avg_power for o in campaign.all_observations)
        budget = cfg.truth.pi1 + cfg.truth.delta_pi
        assert 0.85 * budget <= max_power <= 1.05 * budget
