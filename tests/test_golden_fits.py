"""Golden regression fixtures for the end-to-end campaign-and-fit path.

``tests/data/golden_fits.json`` pins the fitted Table-I constants for
two platforms under a reduced, fully-seeded campaign.  Any change that
perturbs the measurement pipeline -- sampler, estimator, calibration,
fitting -- shows up here as a drift beyond the documented tolerance,
even when the looser accuracy tests still pass.

Regenerate deliberately (after an intentional pipeline change) with::

    PYTHONPATH=src python -m pytest tests/test_golden_fits.py --update-golden

and review the diff of the JSON like any other code change.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.common import CampaignSettings, run_platform_fit

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_fits.json"
PLATFORMS = ("gtx-titan", "xeon-phi")
#: Relative tolerance of every comparison.  The campaign is seeded and
#: deterministic, so on one BLAS/numpy stack the values reproduce
#: exactly; the headroom absorbs cross-version floating-point drift in
#: the optimiser without masking real pipeline changes.
RTOL = 1e-5

FIELDS = (
    "tau_flop",
    "tau_mem",
    "eps_flop",
    "eps_mem",
    "pi1",
    "delta_pi",
)


def compute_entry(platform_id: str) -> dict:
    fit = run_platform_fit(platform_id, CampaignSettings().scaled_down())
    params = fit.capped.params
    entry = {name: getattr(params, name) for name in FIELDS}
    entry["n_runs"] = fit.campaign.n_runs
    entry["sustained_flops"] = fit.sustained_flops
    entry["sustained_bandwidth"] = fit.sustained_bandwidth
    return entry


@pytest.fixture(scope="module")
def computed():
    return {pid: compute_entry(pid) for pid in PLATFORMS}


@pytest.fixture(scope="module", autouse=True)
def maybe_update(request, computed):
    if request.config.getoption("--update-golden"):
        payload = {
            "_meta": {
                "description": "Golden campaign fits; regenerate with "
                "pytest tests/test_golden_fits.py --update-golden",
                "settings": "CampaignSettings().scaled_down() (seed 2014)",
                "rtol": RTOL,
            },
            "fits": computed,
        }
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(payload, indent=2) + "\n")


@pytest.fixture(scope="module")
def golden():
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"{GOLDEN_PATH} is missing; generate it with "
            f"pytest tests/test_golden_fits.py --update-golden"
        )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("platform_id", PLATFORMS)
def test_fit_matches_golden(platform_id, computed, golden):
    expected = golden["fits"][platform_id]
    actual = computed[platform_id]
    assert actual["n_runs"] == expected["n_runs"]
    for name, want in expected.items():
        if name == "n_runs":
            continue
        assert actual[name] == pytest.approx(want, rel=golden["_meta"]["rtol"]), (
            f"{platform_id}.{name} drifted: {actual[name]!r} vs "
            f"golden {want!r}"
        )


def test_golden_covers_expected_platforms(golden):
    assert set(golden["fits"]) == set(PLATFORMS)
