"""Tests for the ASCII log-log chart renderer and its CLI commands."""

import numpy as np
import pytest

from repro.cli import main
from repro.report.ascii_plot import AsciiPlot


class TestAsciiPlot:
    def test_basic_render(self):
        plot = AsciiPlot(title="T", y_label="W")
        plot.add_series("a", [1.0, 10.0, 100.0], [1.0, 10.0, 100.0])
        text = plot.render()
        assert text.startswith("T\n")
        assert "* a" in text
        assert "[y: W]" in text

    def test_monotone_series_renders_diagonal(self):
        plot = AsciiPlot(width=32, height=8)
        plot.add_series("up", [1, 10, 100], [1, 10, 100])
        rows = [
            line.split("|", 1)[1]
            for line in plot.render().splitlines()
            if "|" in line
        ]
        first_cols = [row.find("*") for row in rows if "*" in row]
        # Higher y (earlier rows) appears at larger x (later columns).
        assert first_cols == sorted(first_cols, reverse=True)

    def test_multiple_series_get_distinct_glyphs(self):
        plot = AsciiPlot()
        plot.add_series("a", [1, 10], [1, 10])
        plot.add_series("b", [1, 10], [10, 1])
        text = plot.render()
        assert "* a" in text and "o b" in text

    def test_rejects_nonpositive_points(self):
        plot = AsciiPlot()
        with pytest.raises(ValueError, match="positive"):
            plot.add_series("bad", [0.0, 1.0], [1.0, 1.0])
        with pytest.raises(ValueError, match="positive"):
            plot.add_series("bad", [1.0, 1.0], [-1.0, 1.0])

    def test_rejects_mismatched_series(self):
        plot = AsciiPlot()
        with pytest.raises(ValueError):
            plot.add_series("bad", [1.0], [1.0, 2.0])

    def test_rejects_empty_render(self):
        with pytest.raises(ValueError, match="nothing"):
            AsciiPlot().render()

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ValueError):
            AsciiPlot(width=4, height=4)

    def test_degenerate_range_padded(self):
        plot = AsciiPlot()
        plot.add_series("flat", [5.0, 5.0], [7.0, 7.0])
        assert plot.render()  # must not divide by zero

    def test_tick_formatting(self):
        assert AsciiPlot._fmt_tick(0.125) == "0.125"
        assert AsciiPlot._fmt_tick(1.6e10) == "1.6e+10"
        assert AsciiPlot._fmt_tick(0) == "0"

    def test_dimensions(self):
        plot = AsciiPlot(width=40, height=10, title="t")
        plot.add_series("a", [1, 100], [1, 100])
        lines = plot.render().splitlines()
        body = [line for line in lines if "|" in line]
        assert len(body) == 10
        for line in body:
            assert len(line.split("|", 1)[1]) <= 40


class TestPlotCommands:
    def test_roofline(self, capsys):
        assert main(["roofline", "gtx-680", "--metric", "power"]) == 0
        out = capsys.readouterr().out
        assert "capped" in out and "uncapped" in out
        assert "|" in out

    def test_compare(self, capsys):
        assert main(["compare", "gtx-titan", "arndale-gpu"]) == 0
        out = capsys.readouterr().out
        assert "gtx-titan" in out and "arndale-gpu" in out
        assert "flop/J" in out

    def test_roofline_validates_platform(self):
        with pytest.raises(SystemExit):
            main(["roofline", "cray-1"])


class TestScatterMode:
    def test_scatter_places_only_given_points(self):
        plot = AsciiPlot(width=32, height=8)
        plot.add_series("line", [1, 1000], [1, 1000])
        plot.add_series("dots", [1, 1000], [1000, 1], scatter=True)
        body = [
            line.split("|", 1)[1]
            for line in plot.render().splitlines()
            if "|" in line
        ]
        dots = sum(row.count("o") for row in body)
        # Exactly the two scatter points (unless one is overdrawn).
        assert 1 <= dots <= 2
