"""The dependency-free two-phase simplex used for LP relaxations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.simplex import solve_lp


class TestKnownPrograms:
    def test_textbook_optimum(self):
        # min x + y  s.t.  x + 2y >= 4, 3x + y >= 6
        r = solve_lp([1.0, 1.0], a_ge=[[1, 2], [3, 1]], b_ge=[4, 6])
        assert r.optimal
        assert r.objective == pytest.approx(2.8)
        assert r.x == pytest.approx((1.6, 1.2))

    def test_infeasible(self):
        r = solve_lp([1.0], a_ub=[[1]], b_ub=[1], a_ge=[[1]], b_ge=[2])
        assert r.status == "infeasible"

    def test_unbounded(self):
        assert solve_lp([-1.0], a_ge=[[1]], b_ge=[1]).status == "unbounded"

    def test_degenerate_vertex(self):
        r = solve_lp(
            [2.0, 3.0, 1.0],
            a_ge=[[1, 1, 1]],
            b_ge=[10],
            a_ub=[[1, 0, 0]],
            b_ub=[3],
        )
        assert r.optimal
        assert r.objective == pytest.approx(10.0)

    def test_no_constraints(self):
        assert solve_lp([1.0, 2.0]).x == (0.0, 0.0)
        assert solve_lp([-1.0]).status == "unbounded"

    def test_zero_cost_still_feasible(self):
        r = solve_lp([0.0, 0.0], a_ge=[[1, 1]], b_ge=[5])
        assert r.optimal
        assert sum(r.x) >= 5 - 1e-9

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            solve_lp([1.0], a_ub=[[1]], b_ub=[1, 2])


class TestDeterminism:
    def test_bitwise_repeatable(self):
        args = dict(
            a_ge=[[1, 2, 0.5], [3, 1, 1]],
            b_ge=[4, 6],
            a_ub=[[1, 1, 1]],
            b_ub=[100],
        )
        first = solve_lp([1.0, 1.0, 2.0], **args)
        for _ in range(3):
            again = solve_lp([1.0, 1.0, 2.0], **args)
            assert again.x == first.x
            assert again.objective == first.objective


@st.composite
def covering_lps(draw):
    """Random small covering LPs with box bounds: always feasible and
    bounded, so the solver must return a certified optimum."""
    n = draw(st.integers(min_value=1, max_value=5))
    m = draw(st.integers(min_value=1, max_value=3))
    pos = st.floats(min_value=0.1, max_value=10.0)
    cost = [draw(pos) for _ in range(n)]
    a_ge = [[draw(pos) for _ in range(n)] for _ in range(m)]
    b_ge = [draw(st.floats(min_value=0.1, max_value=20.0)) for _ in range(m)]
    return cost, a_ge, b_ge


@given(covering_lps())
@settings(max_examples=60)
def test_covering_lp_solution_is_feasible_and_stationary(program):
    cost, a_ge, b_ge = program
    r = solve_lp(cost, a_ge=a_ge, b_ge=b_ge)
    assert r.optimal  # positive rows and rhs: always feasible, bounded
    for row, b in zip(a_ge, b_ge):
        assert sum(a * x for a, x in zip(row, r.x)) >= b - 1e-6 * max(1.0, b)
    assert all(x >= 0 for x in r.x)
    assert r.objective == pytest.approx(
        sum(c * x for c, x in zip(cost, r.x))
    )
