"""Fleet solvers: hand instances plus the hypothesis differential
suite (the scalable path must match the exact oracle on every small
instance -- an ISSUE acceptance criterion)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import FleetInstance, allocations, solve, solve_exact
from repro.telemetry.recorder import TraceRecorder

_REL = 1e-9


def make_instance(
    demands,
    rates,
    powers,
    costs,
    *,
    max_nodes=None,
    power_budget=math.inf,
    cost_budget=math.inf,
    objective="energy",
    horizon=100.0,
):
    """Dense instance: rates[j][i], powers[j][i] per (bin j, platform i)."""
    n_bins = len(demands)
    n_plat = len(costs)
    pair_bin, pair_platform, pair_rate, pair_power = [], [], [], []
    for j in range(n_bins):
        for i in range(n_plat):
            if rates[j][i] is None:
                continue
            pair_bin.append(j)
            pair_platform.append(i)
            pair_rate.append(rates[j][i])
            pair_power.append(powers[j][i])
    return FleetInstance(
        bin_labels=tuple(f"bin{j}" for j in range(n_bins)),
        platform_ids=tuple(f"plat{i}" for i in range(n_plat)),
        demands=tuple(float(d) for d in demands),
        horizon=horizon,
        pair_bin=tuple(pair_bin),
        pair_platform=tuple(pair_platform),
        pair_rate=tuple(pair_rate),
        pair_power=tuple(pair_power),
        unit_costs=tuple(float(c) for c in costs),
        max_nodes=tuple(
            float(m) for m in (max_nodes or [math.inf] * n_plat)
        ),
        power_budget=power_budget,
        cost_budget=cost_budget,
        objective=objective,
    )


def assert_feasible(instance, solution):
    """Every constraint of the integer program holds."""
    nodes = solution.nodes
    assert all(isinstance(x, int) and x >= 0 for x in nodes)
    for j, group in enumerate(instance.bin_pairs()):
        covered = sum(instance.pair_rate[k] * nodes[k] for k in group)
        d = instance.demands[j]
        assert covered >= d - _REL * max(1.0, d), f"bin {j} uncovered"
    power = sum(p * x for p, x in zip(instance.pair_power, nodes))
    assert power <= instance.power_budget * (1 + 1e-6)
    cost = sum(
        instance.unit_costs[instance.pair_platform[k]] * x
        for k, x in enumerate(nodes)
    )
    assert cost <= instance.cost_budget * (1 + 1e-6)
    supply = [0] * len(instance.platform_ids)
    for k, x in enumerate(nodes):
        supply[instance.pair_platform[k]] += x
    for i, cap in enumerate(instance.max_nodes):
        assert supply[i] <= cap + 1e-9


class TestHandInstances:
    def test_single_bin_picks_cheapest_per_job(self):
        # plat0: 2 jobs/node at 10 W; plat1: 5 jobs/node at 20 W.
        # Energy per job: 10*100/2 = 500 vs 20*100/5 = 400 -> plat1.
        inst = make_instance(
            demands=[10],
            rates=[[2.0, 5.0]],
            powers=[[10.0, 20.0]],
            costs=[100.0, 100.0],
        )
        sol = solve_exact(inst)
        assert sol.status == "optimal"
        assert sol.nodes == (0, 2)
        assert sol.energy == pytest.approx(2 * 20.0 * 100.0)

    def test_energy_equals_power_times_horizon(self):
        inst = make_instance(
            demands=[7, 3],
            rates=[[2.0, 3.0], [1.0, 4.0]],
            powers=[[5.0, 9.0], [4.0, 11.0]],
            costs=[10.0, 30.0],
            horizon=250.0,
        )
        sol = solve_exact(inst)
        assert sol.solved
        assert sol.energy == pytest.approx(sol.power * 250.0)

    def test_power_budget_forces_different_mix(self):
        # Under min-cost, plat1 is cheapest (2 nodes * 90 = 180) but
        # draws 40 W; a 35 W rack cap forces the pricier, lower-draw
        # plat0 fleet.  (Under min-energy a power cap cannot change the
        # mix -- energy is power * horizon -- only feasibility.)
        kwargs = dict(
            demands=[10],
            rates=[[2.0, 5.0]],
            powers=[[6.0, 20.0]],
            costs=[60.0, 90.0],
            objective="cost",
        )
        free = solve_exact(make_instance(**kwargs))
        capped = solve_exact(make_instance(**kwargs, power_budget=35.0))
        assert free.nodes == (0, 2)
        assert free.power == pytest.approx(40.0)
        assert capped.status == "optimal"
        assert capped.nodes == (5, 0)
        assert capped.power <= 35.0
        assert capped.cost > free.cost

    def test_supply_cap_forces_mixing(self):
        inst = make_instance(
            demands=[10],
            rates=[[2.0, 5.0]],
            powers=[[10.0, 20.0]],
            costs=[100.0, 100.0],
            max_nodes=[math.inf, 1],
        )
        sol = solve_exact(inst)
        assert sol.status == "optimal"
        # One plat1 node covers 5 jobs; plat0 covers the rest.
        assert sol.nodes == (3, 1)

    def test_cost_objective(self):
        # Cheapest coverage, not cheapest energy.
        inst = make_instance(
            demands=[10],
            rates=[[2.0, 5.0]],
            powers=[[1.0, 100.0]],
            costs=[50.0, 90.0],
            objective="cost",
        )
        sol = solve_exact(inst)
        # plat0: 5 nodes * 50 = 250; plat1: 2 nodes * 90 = 180.
        assert sol.nodes == (0, 2)
        assert sol.cost == pytest.approx(180.0)

    def test_infeasible_power_budget(self):
        inst = make_instance(
            demands=[10],
            rates=[[1.0]],
            powers=[[10.0]],
            costs=[1.0],
            power_budget=50.0,  # needs 10 nodes * 10 W = 100 W
        )
        exact = solve_exact(inst)
        scalable = solve(inst)
        assert exact.status == "infeasible"
        assert scalable.status == "infeasible"
        assert not exact.solved

    def test_unservable_bin_is_infeasible(self):
        inst = make_instance(
            demands=[5, 5],
            rates=[[1.0], [None]],  # nobody serves bin1
            powers=[[1.0], [None]],
            costs=[1.0],
        )
        assert solve_exact(inst).status == "infeasible"
        assert solve(inst).status == "infeasible"

    def test_allocations_consistent_with_totals(self):
        inst = make_instance(
            demands=[7, 3],
            rates=[[2.0, 3.0], [1.0, 4.0]],
            powers=[[5.0, 9.0], [4.0, 11.0]],
            costs=[10.0, 30.0],
        )
        sol = solve(inst)
        assert sol.solved
        allocs = allocations(inst, sol)
        assert sum(a.power for a in allocs) == pytest.approx(sol.power)
        assert sum(a.energy for a in allocs) == pytest.approx(sol.energy)
        assert sum(a.cost for a in allocs) == pytest.approx(sol.cost)
        assert sum(a.nodes for a in allocs) == sol.total_nodes
        for a in allocs:
            assert a.nodes > 0

    def test_lp_bound_reported_and_valid(self):
        inst = make_instance(
            demands=[9],
            rates=[[2.0, 5.0]],
            powers=[[10.0, 20.0]],
            costs=[100.0, 100.0],
        )
        sol = solve(inst)
        assert sol.status == "optimal"
        assert math.isfinite(sol.lp_bound)
        assert sol.lp_bound <= sol.objective_value + 1e-9

    def test_deterministic_across_runs(self):
        inst = make_instance(
            demands=[8, 6, 4],
            rates=[[2, 3, 1], [1, 2, 5], [4, 1, 2]],
            powers=[[3, 7, 2], [4, 5, 9], [6, 2, 3]],
            costs=[10, 20, 15],
            power_budget=200.0,
        )
        first = solve(inst)
        for _ in range(3):
            assert solve(inst) == first

    def test_exact_tie_break_is_deterministic(self):
        # Two identical platforms: ties keep the first solution the
        # DFS finds (counts ascend, so the later pair fills first),
        # and that choice never varies between runs.
        inst = make_instance(
            demands=[4],
            rates=[[2.0, 2.0]],
            powers=[[5.0, 5.0]],
            costs=[10.0, 10.0],
        )
        sol = solve_exact(inst)
        assert sol.nodes == (0, 2)
        assert all(solve_exact(inst).nodes == sol.nodes for _ in range(3))

    def test_truncated_search_reports_states(self):
        inst = make_instance(
            demands=[50, 50],
            rates=[[1.0, 1.1, 1.2], [1.0, 1.1, 1.2]],
            powers=[[1.0, 2.0, 3.0], [1.0, 2.0, 3.0]],
            costs=[1.0, 2.0, 3.0],
        )
        sol = solve_exact(inst, state_limit=10)
        assert sol.status in ("feasible", "unknown")
        assert sol.states_explored >= 10

    def test_incumbent_seeds_truncated_search(self):
        inst = make_instance(
            demands=[50],
            rates=[[1.0, 1.1]],
            powers=[[1.0, 2.0]],
            costs=[1.0, 2.0],
        )
        # A deliberately wasteful incumbent (one surplus node): the
        # bound cannot prune it, so the 2-state search truncates and
        # falls back to the seed.
        seed = (50, 1)
        sol = solve_exact(inst, state_limit=2, incumbent=seed)
        assert sol.status == "feasible"
        assert sol.nodes == seed
        assert sol.objective_value == pytest.approx(
            50 * 1.0 * 100.0 + 1 * 2.0 * 100.0
        )

    def test_solve_span_recorded_once(self):
        recorder = TraceRecorder()
        inst = make_instance(
            demands=[4], rates=[[2.0]], powers=[[5.0]], costs=[10.0]
        )
        solve(inst, recorder=recorder)
        spans = [s for s in recorder.records() if s.name == "fleet_solve"]
        assert len(spans) == 1
        assert spans[0].meta_dict()["method"] == "lp_greedy"

    def test_validation(self):
        with pytest.raises(ValueError, match="objective"):
            make_instance(
                demands=[1], rates=[[1.0]], powers=[[1.0]], costs=[1.0],
                objective="area",
            )
        with pytest.raises(ValueError, match="budgets"):
            make_instance(
                demands=[1], rates=[[1.0]], powers=[[1.0]], costs=[1.0],
                power_budget=0.0,
            )
        with pytest.raises(ValueError, match="rates"):
            make_instance(
                demands=[1], rates=[[0.0]], powers=[[1.0]], costs=[1.0],
            )


@st.composite
def fleet_instances(draw):
    """Random instances small enough for the oracle to finish."""
    n_bins = draw(st.integers(min_value=1, max_value=3))
    n_plat = draw(st.integers(min_value=1, max_value=6))
    demand = st.integers(min_value=1, max_value=12)
    rate = st.floats(min_value=0.5, max_value=6.0)
    power = st.floats(min_value=0.5, max_value=10.0)
    cost = st.floats(min_value=1.0, max_value=20.0)
    demands = [draw(demand) for _ in range(n_bins)]
    rates = [[draw(rate) for _ in range(n_plat)] for _ in range(n_bins)]
    powers = [[draw(power) for _ in range(n_plat)] for _ in range(n_bins)]
    costs = [draw(cost) for _ in range(n_plat)]
    # Budgets: unlimited, generous, or tight (sometimes infeasible).
    power_budget = draw(
        st.one_of(
            st.just(math.inf),
            st.floats(min_value=5.0, max_value=400.0),
        )
    )
    cost_budget = draw(
        st.one_of(
            st.just(math.inf),
            st.floats(min_value=10.0, max_value=2000.0),
        )
    )
    max_nodes = [
        draw(st.one_of(st.just(math.inf), st.integers(1, 20)))
        for _ in range(n_plat)
    ]
    objective = draw(st.sampled_from(["energy", "cost"]))
    return make_instance(
        demands,
        rates,
        powers,
        costs,
        max_nodes=max_nodes,
        power_budget=power_budget,
        cost_budget=cost_budget,
        objective=objective,
    )


@given(fleet_instances())
@settings(max_examples=80)
def test_differential_scalable_vs_oracle(instance):
    """ISSUE acceptance: on every instance small enough for the exact
    oracle, the greedy/LP path is feasible and matches the optimum."""
    oracle = solve_exact(instance, state_limit=5_000_000)
    assert oracle.status in ("optimal", "infeasible"), "oracle truncated"
    scalable = solve(instance)
    assert scalable.solved == oracle.solved
    if oracle.status == "infeasible":
        assert scalable.status == "infeasible"
        return
    assert_feasible(instance, oracle)
    assert_feasible(instance, scalable)
    assert scalable.objective_value == pytest.approx(
        oracle.objective_value, rel=1e-9, abs=1e-9
    )
    if math.isfinite(scalable.lp_bound):
        assert (
            scalable.lp_bound
            <= oracle.objective_value * (1 + 1e-9) + 1e-9
        )


@given(fleet_instances())
@settings(max_examples=40)
def test_exact_is_deterministic(instance):
    assert solve_exact(instance) == solve_exact(instance)
