"""The fleet evaluation matrix, including the governor-aware rack
power fix: node draw is the *capped* per-node draw, never the nominal
demand."""

import math

import pytest

from repro.fleet import WorkloadBin, WorkloadSpec, evaluate_fleet
from repro.machine.governor import run_governor
from repro.machine.platforms import all_platforms, platform
from repro.telemetry.recorder import TraceRecorder


def _spec(*bins):
    return WorkloadSpec(bins=tuple(bins), horizon=3600.0)


class TestMatrixShape:
    def test_full_matrix_over_twelve_platforms(self):
        spec = _spec(
            WorkloadBin(jobs=10, algorithm="matmul", n=4096),
            WorkloadBin(jobs=10, flops=1e12, bytes_moved=1e10),
        )
        matrix = evaluate_fleet(spec, all_platforms())
        assert matrix.platform_ids == tuple(sorted(all_platforms()))
        assert matrix.bin_labels == spec.labels
        assert len(matrix.entries) + len(matrix.exclusions) == 2 * 12

    def test_deterministic_of_dict_order(self):
        spec = _spec(WorkloadBin(jobs=1, algorithm="fft", n=2 ** 20))
        configs = all_platforms()
        forward = evaluate_fleet(spec, dict(configs))
        backward = evaluate_fleet(
            spec, dict(reversed(list(configs.items())))
        )
        assert forward == backward

    def test_entry_fields_consistent(self):
        spec = _spec(WorkloadBin(jobs=7, algorithm="stencil", n=1e8))
        matrix = evaluate_fleet(spec, {"gtx-titan": platform("gtx-titan")})
        (e,) = matrix.entries
        assert e.jobs_per_node == pytest.approx(3600.0 / e.time)
        assert e.node_power == pytest.approx(e.energy / e.time)

    def test_double_precision_exclusions(self):
        spec = _spec(
            WorkloadBin(jobs=1, algorithm="matmul", n=2048, precision="double")
        )
        matrix = evaluate_fleet(spec, all_platforms())
        assert matrix.entries  # some platforms support double
        assert matrix.exclusions  # several Table I platforms do not
        served = {e.platform_id for e in matrix.entries}
        assert served.isdisjoint(x.platform_id for x in matrix.exclusions)

    def test_residency_exclusion(self):
        spec = _spec(
            WorkloadBin(jobs=1, algorithm="matmul", n=8192, resident=True)
        )
        matrix = evaluate_fleet(spec, all_platforms())
        assert not matrix.entries
        assert all("working set" in x.reason for x in matrix.exclusions)

    def test_span_recorded(self):
        recorder = TraceRecorder()
        spec = _spec(WorkloadBin(jobs=1, algorithm="triad", n=1e8))
        evaluate_fleet(
            spec, {"nuc-cpu": platform("nuc-cpu")}, recorder=recorder
        )
        names = [s.name for s in recorder.records()]
        assert "fleet_evaluate" in names


class TestGovernorAwarePower:
    """Satellite fix: rack power must sum min(demand, pi1+delta_pi),
    not the nominal draw -- differentially checked against the
    governor simulation itself."""

    # fft on gtx-580 is power-bound: nominal draw exceeds the cap.
    PLATFORM = "gtx-580"
    BIN = WorkloadBin(jobs=1, algorithm="fft", n=2 ** 24)

    def _entry(self):
        matrix = evaluate_fleet(
            _spec(self.BIN), {self.PLATFORM: platform(self.PLATFORM)}
        )
        (entry,) = matrix.entries
        return entry, platform(self.PLATFORM)

    def test_fixture_is_power_bound(self):
        entry, config = self._entry()
        assert entry.uncapped_node_power > config.max_model_power

    def test_capped_draw_never_exceeds_rail(self):
        entry, config = self._entry()
        assert entry.node_power <= config.max_model_power * (1 + 1e-9)

    def test_nominal_draw_would_overcommit_the_budget(self):
        """Pre-fix accounting: budgeting the nominal draw rejects a
        rack that the governor would in fact keep under the cap."""
        entry, config = self._entry()
        budget = 10 * config.max_model_power  # room for exactly 10 nodes
        nodes_capped = int(budget / entry.node_power)
        nodes_nominal = int(budget / entry.uncapped_node_power)
        assert nodes_capped == 10
        assert nodes_nominal < nodes_capped

    def test_differential_against_run_governor(self):
        """The closed-form capped draw equals pi1 + the governor's
        mean dynamic power (within the loop's documented ramp-up
        overshoot)."""
        entry, config = self._entry()
        truth = config.truth
        inst = self.BIN
        from repro.apps import fast_memory_capacity
        from repro.fleet.workload import algorithm_by_name

        algorithm = algorithm_by_name("fft")
        instance = algorithm.instance(2 ** 24, fast_memory_capacity(config))
        w, q = instance.flops, instance.bytes_moved
        t_nominal = max(w * truth.tau_flop, q * truth.tau_mem)
        demand = (w * truth.eps_flop + q * truth.eps_mem) / t_nominal
        assert demand > truth.delta_pi  # genuinely throttled
        # A fleet node runs its bin back-to-back for the whole horizon,
        # so the governed execution to compare against is many jobs
        # long -- long enough for the control loop to settle past its
        # documented initial ramp-up overshoot.
        jobs = max(1, math.ceil(2.0 / t_nominal))
        result = run_governor(jobs * t_nominal, demand, truth.delta_pi)
        assert result.throttled
        durations = result.durations
        mean_dynamic = float(
            sum(f * demand * d for f, d in zip(result.frequencies, durations))
            / sum(durations)
        )
        governor_draw = truth.pi1 + mean_dynamic
        assert entry.node_power == pytest.approx(governor_draw, rel=0.02)
        assert mean_dynamic <= truth.delta_pi * 1.02


class TestRawBins:
    def test_raw_bin_uses_model_directly(self):
        from repro.core import model

        spec = _spec(WorkloadBin(jobs=2, flops=1e12, bytes_moved=1e10))
        matrix = evaluate_fleet(spec, {"gtx-titan": platform("gtx-titan")})
        (e,) = matrix.entries
        truth = platform("gtx-titan").truth
        assert e.time == pytest.approx(
            model.time(truth, 1e12, 1e10, capped=True)
        )
        assert e.energy == pytest.approx(
            model.energy(truth, 1e12, 1e10, capped=True)
        )

    def test_empty_platforms_rejected(self):
        spec = _spec(WorkloadBin(jobs=1, flops=1e9, bytes_moved=1e8))
        with pytest.raises(ValueError):
            evaluate_fleet(spec, {})

    def test_matrix_lookup_helpers(self):
        spec = _spec(WorkloadBin(jobs=1, algorithm="triad", n=1e8))
        matrix = evaluate_fleet(spec, all_platforms())
        label = spec.labels[0]
        assert matrix.entry(label, "gtx-titan") is not None
        assert matrix.entry(label, "no-such") is None
        assert "gtx-titan" in matrix.feasible_platforms(label)
