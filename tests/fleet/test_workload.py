"""Workload spec parsing and validation."""

import math

import pytest

from repro.fleet import WorkloadBin, WorkloadSpec
from repro.fleet.workload import ALGORITHM_NAMES, algorithm_by_name


class TestWorkloadBin:
    def test_algorithm_bin(self):
        b = WorkloadBin(jobs=10, algorithm="matmul", n=1024)
        assert not b.is_raw
        assert b.label == "matmul(n=1024)"
        assert b.precision == "single"

    def test_raw_bin(self):
        b = WorkloadBin(jobs=5, flops=1e12, bytes_moved=1e10)
        assert b.is_raw
        assert "raw" in b.label

    def test_double_precision_label(self):
        b = WorkloadBin(jobs=1, algorithm="fft", n=64, precision="double")
        assert "double" in b.label

    def test_rejects_both_forms(self):
        with pytest.raises(ValueError, match="not both"):
            WorkloadBin(jobs=1, algorithm="fft", n=64, flops=1.0, bytes_moved=1.0)

    def test_rejects_neither_form(self):
        with pytest.raises(ValueError):
            WorkloadBin(jobs=1)

    def test_rejects_bad_numbers(self):
        with pytest.raises(ValueError):
            WorkloadBin(jobs=0, algorithm="fft", n=64)
        with pytest.raises(ValueError):
            WorkloadBin(jobs=math.nan, algorithm="fft", n=64)
        with pytest.raises(ValueError):
            WorkloadBin(jobs=1, algorithm="fft", n=math.inf)
        with pytest.raises(ValueError):
            WorkloadBin(jobs=1, flops=1e12, bytes_moved=math.nan)

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            WorkloadBin(jobs=1, algorithm="dgemm", n=64)

    def test_rejects_bad_precision(self):
        with pytest.raises(ValueError, match="precision"):
            WorkloadBin(jobs=1, algorithm="fft", n=64, precision="half")

    def test_round_trip(self):
        b = WorkloadBin(
            jobs=3, algorithm="spmv", n=1e6, precision="single", resident=True
        )
        assert WorkloadBin.from_obj(b.to_obj()) == b
        raw = WorkloadBin(jobs=2, flops=1e9, bytes_moved=1e8, label="k")
        assert WorkloadBin.from_obj(raw.to_obj()) == raw

    def test_from_obj_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown workload bin field"):
            WorkloadBin.from_obj({"jobs": 1, "algorithm": "fft", "n": 4, "nn": 1})


class TestWorkloadSpec:
    def test_from_json(self):
        spec = WorkloadSpec.from_json(
            '{"horizon": 100.0, "bins": ['
            '{"algorithm": "matmul", "n": 512, "jobs": 4},'
            '{"W": 1e10, "Q": 1e9, "jobs": 2}]}'
        )
        assert spec.horizon == 100.0
        assert len(spec.bins) == 2
        assert len(set(spec.labels)) == 2

    def test_round_trip(self):
        spec = WorkloadSpec(
            bins=(
                WorkloadBin(jobs=4, algorithm="matmul", n=512),
                WorkloadBin(jobs=2, flops=1e10, bytes_moved=1e9),
            ),
            horizon=60.0,
        )
        assert WorkloadSpec.from_obj(spec.to_obj()) == spec

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one bin"):
            WorkloadSpec(bins=())

    def test_rejects_duplicate_labels(self):
        b = WorkloadBin(jobs=1, algorithm="fft", n=64)
        with pytest.raises(ValueError, match="duplicate"):
            WorkloadSpec(bins=(b, b))

    def test_rejects_bad_json(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            WorkloadSpec.from_json("{nope")

    def test_rejects_bad_horizon(self):
        b = WorkloadBin(jobs=1, algorithm="fft", n=64)
        with pytest.raises(ValueError):
            WorkloadSpec(bins=(b,), horizon=0.0)


class TestAlgorithmRegistry:
    def test_all_six_names(self):
        assert ALGORITHM_NAMES == (
            "fft", "matmul", "mergesort", "spmv", "stencil", "triad",
        )

    def test_lookup(self):
        for name in ALGORITHM_NAMES:
            assert algorithm_by_name(name).name

    def test_unknown(self):
        with pytest.raises(ValueError, match="choose from"):
            algorithm_by_name("gemm")
