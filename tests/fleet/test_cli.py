"""The ``archline fleet`` subcommand: argument validation (the shared
finite-positive validators), usage-error exits, the golden end-to-end
fixture over the Table I dozen, bit-determinism of the JSON report,
and the fitted-theta store counters.

Regenerate the golden report deliberately with::

    PYTHONPATH=src python -m pytest tests/fleet/test_cli.py --update-golden
"""

import argparse
import json
from pathlib import Path

import pytest

from repro.cli import (
    build_parser,
    main,
    nonnegative_float,
    positive_float,
    positive_int,
)

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "golden_fleet.json"

WORKLOAD = {
    "horizon": 3600.0,
    "bins": [
        {"algorithm": "matmul", "n": 8192, "jobs": 400},
        {"algorithm": "fft", "n": 16777216, "jobs": 1200},
        {"algorithm": "stencil", "n": 1e8, "jobs": 900},
        {"algorithm": "spmv", "n": 1e7, "jobs": 600},
        {"W": 2e12, "Q": 4e10, "jobs": 150, "label": "custom-kernel"},
    ],
}


@pytest.fixture
def workload_path(tmp_path):
    path = tmp_path / "workload.json"
    path.write_text(json.dumps(WORKLOAD))
    return str(path)


class TestSharedValidators:
    """Satellite 2: one strict numeric validator set for every
    subcommand, so NaN/inf/negative budgets die at parse time."""

    def test_positive_float_accepts(self):
        assert positive_float("2.5") == 2.5
        assert positive_float("1e-9") == 1e-9

    @pytest.mark.parametrize(
        "bad", ["0", "-1", "nan", "NaN", "inf", "-inf", "abc", ""]
    )
    def test_positive_float_rejects(self, bad):
        with pytest.raises(argparse.ArgumentTypeError):
            positive_float(bad)

    def test_nonnegative_float_accepts_zero(self):
        assert nonnegative_float("0") == 0.0
        assert nonnegative_float("3") == 3.0

    @pytest.mark.parametrize("bad", ["-0.5", "nan", "inf", "x"])
    def test_nonnegative_float_rejects(self, bad):
        with pytest.raises(argparse.ArgumentTypeError):
            nonnegative_float(bad)

    @pytest.mark.parametrize("bad", ["0", "-2", "1.5", "nan", "x"])
    def test_positive_int_rejects(self, bad):
        with pytest.raises(argparse.ArgumentTypeError):
            positive_int(bad)

    @pytest.mark.parametrize(
        "argv",
        [
            ["fleet", "--workload", "w.json", "--power-budget", "nan"],
            ["fleet", "--workload", "w.json", "--power-budget", "-5"],
            ["fleet", "--workload", "w.json", "--cost-budget", "inf"],
            ["fleet", "--workload", "w.json", "--horizon", "0"],
            ["fleet", "--workload", "w.json", "--states", "0"],
            ["campaign", "--shard-timeout", "nan"],
            ["serve", "--max-batch", "0"],
            ["serve", "--max-body-bytes", "-1"],
        ],
    )
    def test_bad_flag_values_exit_2_at_parse(self, argv):
        with pytest.raises(SystemExit) as err:
            build_parser().parse_args(argv)
        assert err.value.code == 2

    def test_fleet_flags_parse(self, workload_path):
        args = build_parser().parse_args(
            [
                "fleet",
                "--workload", workload_path,
                "--power-budget", "2000",
                "--cost-budget", "50000",
                "--objective", "cost",
                "--platforms", "gtx-titan", "nuc-cpu",
                "--exact",
            ]
        )
        assert args.command == "fleet"
        assert args.power_budget == 2000.0
        assert args.objective == "cost"
        assert args.platforms == ["gtx-titan", "nuc-cpu"]

    def test_unknown_platform_rejected_at_parse(self, workload_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["fleet", "--workload", workload_path,
                 "--platforms", "cray-1"]
            )


class TestUsageErrors:
    def test_missing_workload_file(self, capsys):
        assert main(["fleet", "--workload", "/no/such/file.json"]) == 2
        assert "cannot read --workload" in capsys.readouterr().err

    def test_bad_workload_spec(self, tmp_path, capsys):
        path = tmp_path / "w.json"
        path.write_text('{"bins": []}')
        assert main(["fleet", "--workload", str(path)]) == 2
        assert "bad workload spec" in capsys.readouterr().err

    def test_cache_and_no_cache_conflict(self, workload_path, capsys):
        code = main(
            ["fleet", "--workload", workload_path,
             "--cache", "/tmp/x", "--no-cache"]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_refresh_without_cache(self, workload_path, capsys, monkeypatch):
        monkeypatch.delenv("ARCHLINE_CACHE", raising=False)
        assert main(
            ["fleet", "--workload", workload_path, "--refresh"]
        ) == 2
        assert "--refresh needs a cache" in capsys.readouterr().err

    def test_unknown_costs_platform(self, workload_path, tmp_path, capsys):
        costs = tmp_path / "costs.json"
        costs.write_text('{"cray-1": 1000}')
        code = main(
            ["fleet", "--workload", workload_path, "--costs", str(costs)]
        )
        assert code == 2
        assert "unknown platform" in capsys.readouterr().err

    def test_infeasible_exits_1(self, workload_path, capsys):
        code = main(
            ["fleet", "--workload", workload_path,
             "--power-budget", "1e-6"]
        )
        assert code == 1
        assert "No node mix" in capsys.readouterr().out


def run_fleet_report(tmp_path, *extra):
    """Run the subcommand end-to-end; return (exit code, report dict)."""
    tmp_path.mkdir(parents=True, exist_ok=True)
    workload = tmp_path / "workload.json"
    workload.write_text(json.dumps(WORKLOAD))
    out = tmp_path / "report.json"
    code = main(
        ["fleet", "--workload", str(workload), "--json", str(out), *extra]
    )
    return code, json.loads(out.read_text())


@pytest.fixture(scope="module")
def computed(tmp_path_factory):
    """The Table-I-dozen solve the golden file pins: all twelve
    platforms, both budgets binding, theta truth."""
    code, report = run_fleet_report(
        tmp_path_factory.mktemp("golden"),
        "--power-budget", "2000",
        "--cost-budget", "50000",
    )
    assert code == 0
    return report


@pytest.fixture(scope="module", autouse=True)
def maybe_update(request, computed):
    if request.config.getoption("--update-golden"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(computed, indent=2) + "\n")


@pytest.fixture(scope="module")
def golden():
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"{GOLDEN_PATH} is missing; generate it with "
            f"pytest tests/fleet/test_cli.py --update-golden"
        )
    return json.loads(GOLDEN_PATH.read_text())


class TestGoldenEndToEnd:
    def test_report_matches_golden(self, computed, golden):
        assert computed == golden

    def test_solution_is_optimal(self, computed):
        assert computed["solution"]["status"] == "optimal"
        assert computed["solution"]["total_nodes"] > 0
        assert computed["solution"]["power_watts"] <= 2000
        assert computed["solution"]["cost"] <= 50000

    def test_every_bin_covered(self, computed):
        covered = {}
        for a in computed["allocations"]:
            covered[a["bin"]] = covered.get(a["bin"], 0) + a["jobs"]
        for b in computed["workload"]["bins"]:
            label = b.get("label") or (
                f"{b['algorithm']}(n={b['n']:g})"
            )
            assert covered[label] >= b["jobs"] - 1e-6

    def test_twelve_platforms_considered(self, computed):
        assert len(computed["platforms"]) == 12

    def test_store_block_null_for_truth(self, computed):
        assert computed["store"] is None


class TestDeterminism:
    def test_json_bit_identical_across_runs(self, tmp_path):
        """ISSUE acceptance: byte-identical reports for fixed inputs."""
        outs = []
        for run in ("a", "b"):
            workload = tmp_path / f"w{run}.json"
            workload.write_text(json.dumps(WORKLOAD))
            out = tmp_path / f"r{run}.json"
            assert main(
                ["fleet", "--workload", str(workload),
                 "--power-budget", "2000", "--json", str(out)]
            ) == 0
            outs.append(out.read_bytes())
        assert outs[0] == outs[1]

    def test_exact_matches_scalable_objective(self, tmp_path):
        _, scalable = run_fleet_report(tmp_path, "--power-budget", "2000")
        _, exact = run_fleet_report(
            tmp_path, "--power-budget", "2000", "--exact"
        )
        assert (
            exact["solution"]["objective_value"]
            == scalable["solution"]["objective_value"]
        )


class TestTraceExport:
    def test_trace_validates_and_has_fleet_spans(self, tmp_path):
        from repro.telemetry.jsonl import read_spans, validate_trace_file

        workload = tmp_path / "w.json"
        workload.write_text(json.dumps(WORKLOAD))
        trace = tmp_path / "trace.jsonl"
        assert main(
            ["fleet", "--workload", str(workload), "--trace", str(trace)]
        ) == 0
        assert validate_trace_file(trace) > 0  # raises on schema breaks
        grouped = read_spans(trace)
        assert set(grouped) == {"fleet"}
        names = {s.name for s in grouped["fleet"]}
        assert {"fleet_evaluate", "fleet_solve"} <= names


class TestFittedTheta:
    """The fitted path resolves theta-hat through the PR-7 store; the
    counters in the report prove the cache actually served."""

    ARGS = (
        "--theta", "fitted",
        "--quick-fit",
        "--platforms", "gtx-titan", "nuc-cpu",
    )

    def test_cold_then_warm_counters(self, tmp_path, monkeypatch):
        monkeypatch.delenv("ARCHLINE_CACHE", raising=False)
        cache = tmp_path / "cache"
        code, cold = run_fleet_report(
            tmp_path / "run1", *self.ARGS, "--cache", str(cache)
        )
        assert code == 0
        assert cold["store"]["hits"] == 0
        assert cold["store"]["misses"] > 0
        assert cold["store"]["puts"] == cold["store"]["misses"]

        code, warm = run_fleet_report(
            tmp_path / "run2", *self.ARGS, "--cache", str(cache)
        )
        assert code == 0
        assert warm["store"]["misses"] == 0
        assert warm["store"]["puts"] == 0
        assert warm["store"]["hits"] == cold["store"]["misses"]
        # Identical semantics modulo the counters.
        cold["store"] = warm["store"] = None
        assert cold == warm
