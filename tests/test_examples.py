"""Smoke tests: every shipped example runs cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 6


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path):
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must print their analysis"


def test_compare_example_accepts_arguments():
    path = next(p for p in EXAMPLES if p.name == "compare_building_blocks.py")
    result = subprocess.run(
        [sys.executable, str(path), "gtx-680", "pandaboard-es"],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "GTX 680" in result.stdout
