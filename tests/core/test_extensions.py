"""Tests for the extension modules: hierarchy, irregular, dvfs,
bounding, composite."""

import math

import numpy as np
import pytest

from repro.core import bounding, composite, dvfs, hierarchy, irregular, model
from repro.machine.platforms import all_params, params


class TestHierarchy:
    def test_levels_of(self, titan):
        assert hierarchy.levels_of(titan) == ("L1", "L2", "dram")

    def test_dram_level_is_identity(self, titan):
        assert hierarchy.params_for_level(titan, "dram") is titan

    def test_level_substitution(self, titan):
        l1 = hierarchy.params_for_level(titan, "L1")
        cache = titan.cache_level("L1")
        assert l1.tau_mem == pytest.approx(cache.tau_byte)
        assert l1.eps_mem == pytest.approx(cache.eps_byte)
        assert l1.tau_flop == titan.tau_flop  # compute side untouched

    def test_unknown_level(self, titan):
        with pytest.raises(KeyError):
            hierarchy.params_for_level(titan, "L9")

    def test_inner_levels_have_lower_balance(self, platforms):
        """Faster levels turn the roofline corner at lower intensity."""
        for cfg in platforms.values():
            p = cfg.truth
            balances = [
                hierarchy.params_for_level(p, lvl).time_balance
                for lvl in hierarchy.levels_of(p)
            ]
            assert balances == sorted(balances), p.name

    def test_ceilings_nest(self, titan):
        """At every intensity, a faster level's ceiling dominates."""
        grid = np.logspace(-3, 9, 50, base=2)
        c = hierarchy.ceilings(titan, grid)
        assert np.all(c["L1"].performance >= c["L2"].performance - 1e-6)
        assert np.all(c["L2"].performance >= c["dram"].performance - 1e-6)

    def test_ceilings_converge_at_high_intensity(self, titan):
        c = hierarchy.ceilings(titan, [2.0 ** 12])
        perf = {lvl: ceiling.performance[0] for lvl, ceiling in c.items()}
        assert perf["L1"] == pytest.approx(perf["dram"], rel=1e-6)

    def test_locality_speedup_bounds(self, titan):
        s = hierarchy.locality_speedup(titan, "L1", 1.0)
        ratio = titan.cache_level("L1").bandwidth / titan.peak_bandwidth
        assert 1.0 <= s <= ratio * (1 + 1e-9)

    def test_locality_speedup_one_when_compute_bound(self, titan):
        assert hierarchy.locality_speedup(titan, "L1", 2.0 ** 12) == pytest.approx(
            1.0
        )

    def test_locality_energy_gain_positive(self, platforms):
        for cfg in platforms.values():
            p = cfg.truth
            for level in p.cache_by_name:
                assert hierarchy.locality_energy_gain(p, level, 1.0) >= 1.0


class TestIrregularWorkloads:
    def test_workload_validation(self):
        with pytest.raises(ValueError):
            irregular.Workload("", 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            irregular.Workload("w", 0.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            irregular.Workload("w", -1.0, 0.0, 0.0)

    def test_spmv_shape(self):
        w = irregular.spmv_workload(nnz=1e6, n_rows=1e5)
        assert w.flops == pytest.approx(2e6)
        assert w.random_accesses == pytest.approx(1e6)
        assert w.randomness == pytest.approx(0.5)
        assert 0.2 < w.stream_intensity < 0.3

    def test_bfs_shape(self):
        w = irregular.bfs_workload(edges=1e6, vertices=1e5)
        assert w.flops == 1e6
        assert w.random_accesses == 1e6

    def test_time_reduces_to_base_model_without_randomness(self, titan):
        w = irregular.Workload("dense", flops=1e10, stream_bytes=1e9,
                               random_accesses=0.0)
        assert irregular.time(titan, w) == pytest.approx(
            float(model.time(titan, 1e10, 1e9))
        )
        assert irregular.energy(titan, w) == pytest.approx(
            float(model.energy(titan, 1e10, 1e9))
        )

    def test_randomness_slows_and_costs(self, titan):
        dense = irregular.Workload("d", 1e9, 1e9, 0.0)
        sparse = irregular.Workload("s", 1e9, 1e9, 1e7)
        assert irregular.time(titan, sparse) > irregular.time(titan, dense)
        assert irregular.energy(titan, sparse) > irregular.energy(titan, dense)

    def test_requires_random_params(self):
        nuc_gpu = params("nuc-gpu")
        w = irregular.Workload("s", 1e9, 1e9, 1e6)
        with pytest.raises(ValueError, match="random-access"):
            irregular.time(nuc_gpu, w)

    def test_capped_time_at_least_uncapped(self, arndale_gpu):
        w = irregular.spmv_workload(nnz=1e7, n_rows=1e6)
        assert irregular.time(arndale_gpu, w, capped=True) >= irregular.time(
            arndale_gpu, w, capped=False
        )

    def test_power_bounded_by_cap(self, arndale_gpu):
        w = irregular.spmv_workload(nnz=1e7, n_rows=1e6)
        power = irregular.avg_power(arndale_gpu, w)
        assert power <= arndale_gpu.pi1 + arndale_gpu.delta_pi + 1e-9

    def test_effective_random_energy_inversion(self):
        """Marginally the Phi wins by ~9x; with the pi1 charge it loses
        to the Titan -- the Section V-B inversion, extended."""
        phi = params("xeon-phi")
        titan = params("gtx-titan")
        assert phi.random.eps_access < titan.random.eps_access / 8
        assert irregular.effective_random_energy(phi) > (
            irregular.effective_random_energy(titan)
        )

    def test_ranking_skips_platforms_without_random(self):
        w = irregular.spmv_workload(nnz=1e6, n_rows=1e5)
        ranking = irregular.rank_by_irregular_efficiency(all_params(), w)
        ids = [pid for pid, _ in ranking]
        assert "nuc-gpu" not in ids
        assert len(ids) == 11
        scores = [v for _, v in ranking]
        assert scores == sorted(scores, reverse=True)

    def test_flops_per_joule_requires_flops(self, titan):
        w = irregular.Workload("mem", 0.0, 1e9, 0.0)
        with pytest.raises(ValueError):
            irregular.flops_per_joule(titan, w)

    def test_scaled(self):
        w = irregular.spmv_workload(nnz=1e6, n_rows=1e5).scaled(3.0)
        assert w.flops == pytest.approx(6e6)


class TestDVFS:
    def test_scaled_params_identity_at_full_speed(self, titan):
        s = dvfs.scaled_params(titan, 1.0)
        assert s.tau_flop == titan.tau_flop
        assert s.eps_flop == titan.eps_flop

    def test_scaled_params_validation(self, titan):
        with pytest.raises(ValueError):
            dvfs.scaled_params(titan, 0.0)
        with pytest.raises(ValueError):
            dvfs.scaled_params(titan, 1.5)
        with pytest.raises(ValueError):
            dvfs.scaled_params(titan, 0.5, alpha=1.5)

    def test_slowdown_scales_time_and_energy(self, titan):
        s = dvfs.scaled_params(titan, 0.5, alpha=0.2)
        assert s.tau_flop == pytest.approx(2 * titan.tau_flop)
        g = 0.2 + 0.8 * 0.25
        assert s.eps_flop == pytest.approx(g * titan.eps_flop)
        assert s.cache_level("L1").bandwidth == pytest.approx(
            0.5 * titan.cache_level("L1").bandwidth
        )

    def test_pi1_unchanged(self, titan):
        assert dvfs.scaled_params(titan, 0.3).pi1 == titan.pi1

    def test_high_pi1_platform_races_to_idle(self, xeon_phi):
        # pi1 fraction 83%: slowing down can never pay.
        assert dvfs.optimal_frequency(xeon_phi, 1.0, alpha=0.2) == 1.0
        assert dvfs.energy_savings(xeon_phi, 1.0, alpha=0.2) == 0.0
        assert dvfs.dvfs_useless_threshold(xeon_phi, 1.0, alpha=0.2)

    def test_low_pi1_platform_benefits_from_slowing(self, arndale_gpu):
        f = dvfs.optimal_frequency(arndale_gpu, 1.0, alpha=0.2)
        assert f < 0.9
        assert dvfs.energy_savings(arndale_gpu, 1.0, alpha=0.2) > 0.1

    def test_zero_pi1_always_prefers_crawling(self, simple_machine):
        from dataclasses import replace

        free = replace(simple_machine.uncapped(), pi1=0.0)
        f = dvfs.optimal_frequency(free, 1.0, alpha=0.2, f_min=0.1)
        assert f == pytest.approx(0.1, abs=0.01)  # pinned at the floor

    def test_optimum_beats_neighbours(self, arndale_gpu):
        f = dvfs.optimal_frequency(arndale_gpu, 2.0, alpha=0.3)
        e_star = dvfs.energy_per_flop_at(arndale_gpu, 2.0, f, alpha=0.3)
        for other in (max(0.1, f - 0.05), min(1.0, f + 0.05)):
            assert e_star <= dvfs.energy_per_flop_at(
                arndale_gpu, 2.0, other, alpha=0.3
            ) * (1 + 1e-6)

    def test_savings_grow_as_alpha_falls(self, arndale_gpu):
        low = dvfs.energy_savings(arndale_gpu, 1.0, alpha=0.1)
        high = dvfs.energy_savings(arndale_gpu, 1.0, alpha=0.6)
        assert low >= high


class TestBounding:
    def test_bounded_ensemble(self, arndale_gpu):
        agg = bounding.bounded_ensemble(arndale_gpu, 140.0)
        assert agg.pi1 + agg.delta_pi <= 140.0
        assert agg.peak_flops == pytest.approx(22 * arndale_gpu.peak_flops)

    def test_bounded_ensemble_infeasible(self, titan):
        assert bounding.bounded_ensemble(titan, 100.0) is None

    def test_bounded_ensemble_validation(self, titan):
        with pytest.raises(ValueError):
            bounding.bounded_ensemble(titan, 0.0)
        with pytest.raises(ValueError):
            bounding.bounded_ensemble(titan.uncapped(), 100.0)

    def test_evaluate_candidates_respects_budget(self):
        candidates = bounding.evaluate_candidates(all_params(), 100.0, 1.0)
        assert candidates
        for c in candidates:
            assert c.power <= 100.0 + 1e-9
            assert c.count >= 1

    def test_best_block_memory_bound_is_arndale(self):
        best = bounding.best_block(all_params(), 140.0, 0.25)
        assert best.block_id == "arndale-gpu"

    def test_best_block_raises_when_nothing_fits(self):
        with pytest.raises(ValueError, match="budget"):
            bounding.best_block(all_params(), 1.0, 1.0)

    def test_objective_switch(self):
        perf = bounding.best_block(all_params(), 290.0, 64.0)
        eff = bounding.best_block(
            all_params(), 290.0, 64.0, objective="flops_per_joule"
        )
        assert perf.score("performance") >= eff.score("performance")
        assert eff.score("flops_per_joule") >= perf.score("flops_per_joule")

    def test_crossover_budget_structure(self):
        crossings = bounding.crossover_budget(all_params(), 8.0)
        assert crossings
        budgets = [b for b, _ in crossings]
        assert budgets == sorted(budgets)
        winners = [w for _, w in crossings]
        assert all(a != b for a, b in zip(winners, winners[1:]))

    def test_pareto_frontier_is_nondominated(self):
        frontier = bounding.pareto_frontier(all_params(), 290.0, 4.0)
        assert frontier
        for a in frontier:
            for b in frontier:
                if a is b:
                    continue
                assert not (
                    b.performance >= a.performance
                    and b.flops_per_joule >= a.flops_per_joule
                    and (
                        b.performance > a.performance
                        or b.flops_per_joule > a.flops_per_joule
                    )
                )


class TestComposite:
    def test_validation(self, titan):
        with pytest.raises(ValueError):
            composite.CompositeMachine(name="", components=((titan, 1.0),))
        with pytest.raises(ValueError):
            composite.CompositeMachine(name="m", components=())
        with pytest.raises(ValueError):
            composite.CompositeMachine.of("m", (titan, 0.0))

    def test_single_component_matches_base_model(self, titan):
        mix = composite.CompositeMachine.of("solo", (titan, 1.0))
        for I in (0.25, 2.0, 64.0):
            assert mix.performance(I) == pytest.approx(
                float(model.performance(titan, I))
            )
            assert mix.flops_per_joule(I) == pytest.approx(
                float(model.flops_per_joule(titan, I))
            )

    def test_homogeneous_matches_scaling_ensemble(self, arndale_gpu):
        from repro.core.scaling import ensemble

        mix = composite.CompositeMachine.of("agg", (arndale_gpu, 5.0))
        agg = ensemble(arndale_gpu, 5)
        for I in (0.5, 4.0, 32.0):
            assert mix.performance(I) == pytest.approx(
                float(model.performance(agg, I)), rel=1e-9
            )

    def test_mixed_performance_is_sum(self, titan, arndale_gpu):
        mix = composite.CompositeMachine.of("mix", (titan, 1.0), (arndale_gpu, 10.0))
        expected = float(model.performance(titan, 1.0)) + 10 * float(
            model.performance(arndale_gpu, 1.0)
        )
        assert mix.performance(1.0) == pytest.approx(expected)

    def test_mixed_efficiency_between_components(self, titan, arndale_gpu):
        mix = composite.CompositeMachine.of("mix", (titan, 1.0), (arndale_gpu, 10.0))
        for I in (0.25, 1.0, 16.0):
            e_mix = mix.flops_per_joule(I)
            e_a = float(model.flops_per_joule(titan, I))
            e_b = float(model.flops_per_joule(arndale_gpu, I))
            assert min(e_a, e_b) - 1e-9 <= e_mix <= max(e_a, e_b) + 1e-9

    def test_static_aggregates(self, titan, arndale_gpu):
        mix = composite.CompositeMachine.of("mix", (titan, 2.0), (arndale_gpu, 3.0))
        assert mix.max_power == pytest.approx(2 * 287.0 + 3 * 6.11, rel=1e-3)
        assert mix.peak_flops == pytest.approx(
            2 * titan.peak_flops + 3 * arndale_gpu.peak_flops
        )

    def test_array_interface(self, titan, arndale_gpu):
        mix = composite.CompositeMachine.of("mix", (titan, 1.0), (arndale_gpu, 4.0))
        grid = np.array([0.5, 2.0, 8.0])
        perf = mix.performance(grid)
        assert perf.shape == (3,)
        assert np.all(np.diff(perf) > 0)

    def test_power_consistency(self, titan, arndale_gpu):
        """avg_power == performance * energy_per_flop and below max."""
        mix = composite.CompositeMachine.of("mix", (titan, 1.0), (arndale_gpu, 5.0))
        for I in (0.25, 4.0, 128.0):
            p = mix.avg_power(I)
            assert p <= mix.max_power * (1 + 1e-9)
            assert p >= mix.constant_power * (1 - 1e-9)

    def test_describe(self, titan, arndale_gpu):
        mix = composite.CompositeMachine.of("mix", (titan, 1.0), (arndale_gpu, 2.0))
        text = mix.describe()
        assert "GTX Titan" in text and "Arndale GPU" in text


class TestBestMix:
    def test_matches_or_beats_homogeneous(self):
        from repro.core.bounding import best_block, best_mix

        for budget, I in ((140.0, 0.25), (300.0, 4.0), (300.0, 64.0)):
            hom = best_block(all_params(), budget, I)
            mix = best_mix(all_params(), budget, I)
            assert mix.performance(I) >= hom.performance * (1 - 1e-9)

    def test_respects_budget(self):
        from repro.core.bounding import best_mix

        mix = best_mix(all_params(), 200.0, 2.0)
        assert mix.max_power <= 200.0 + 1e-6

    def test_raises_when_nothing_fits(self):
        from repro.core.bounding import best_mix

        with pytest.raises(ValueError, match="budget"):
            best_mix(all_params(), 2.0, 1.0)

    def test_mix_uses_leftover_budget(self):
        """With a budget that leaves a large remainder after the best
        homogeneous block, the mix packs a second block in."""
        from repro.core.bounding import best_block, best_mix

        blocks = {
            "gtx-titan": params("gtx-titan"),  # 287 W nodes
            "arndale-gpu": params("arndale-gpu"),  # 6.11 W nodes
        }
        budget = 320.0
        hom = best_block(blocks, budget, 8.0)
        mix = best_mix(blocks, budget, 8.0)
        # One Titan (287 W) + five Arndales beats either alone at I=8.
        assert mix.performance(8.0) > hom.performance
        assert len(mix.components) == 2
