"""Tests for the utilisation-aware capping model (paper's future work)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core import model
from repro.core.utilisation import UtilisationModel, fit_slope, predict, utilisations
from repro.machine.config import PlatformEffects
from repro.machine.governor import GovernorSettings
from repro.machine.noise import NoiseSpec
from repro.machine.platforms import platform
from repro.microbench.suite import fit_campaign, run_campaign


def clean_config(pid: str, slope: float):
    """A platform whose ONLY second-order effect is utilisation scaling."""
    cfg = platform(pid)
    return replace(
        cfg,
        effects=PlatformEffects(
            ridge_smoothing=0.0,
            governor=GovernorSettings(period=1e-4, hysteresis=0.005, gain=0.05),
            noise=NoiseSpec(time_sigma=0.003, power_sigma=0.003),
            utilisation_energy_slope=slope,
        ),
    )


class TestForwardModel:
    def test_zero_slope_recovers_capped_model(self, simple_machine):
        W = np.logspace(9, 12, 20)
        Q = np.full_like(W, 1e10)
        t, e = predict(simple_machine, W, Q, 0.0)
        assert np.allclose(t, model.time(simple_machine, W, Q))
        assert np.allclose(e, model.energy(simple_machine, W, Q))

    def test_slope_validation(self, simple_machine):
        with pytest.raises(ValueError):
            predict(simple_machine, np.array([1e9]), np.array([1e9]), 1.0)
        with pytest.raises(ValueError):
            predict(simple_machine, np.array([1e9]), np.array([1e9]), -0.1)

    def test_utilisations_bounds_and_limits(self, simple_machine):
        W = np.array([1e12, 1e9, 0.0])
        Q = np.array([1e9, 1e12, 1e9])
        u_f, u_m = utilisations(simple_machine, W, Q)
        assert np.all((0 <= u_f) & (u_f <= 1))
        assert np.all((0 <= u_m) & (u_m <= 1))
        assert u_f[0] == 1.0  # compute-bound: flop unit saturated
        assert u_m[1] == 1.0  # memory-bound
        assert u_f[2] == 0.0  # no flops at all

    def test_slope_cuts_energy_most_at_imbalance(self, simple_machine):
        Q = 1e10
        balanced_w = simple_machine.time_balance * Q
        _, e0_bal = predict(simple_machine, np.array([balanced_w]), np.array([Q]), 0.0)
        _, e3_bal = predict(simple_machine, np.array([balanced_w]), np.array([Q]), 0.3)
        _, e0_mem = predict(simple_machine, np.array([balanced_w / 64]), np.array([Q]), 0.0)
        _, e3_mem = predict(simple_machine, np.array([balanced_w / 64]), np.array([Q]), 0.3)
        saving_bal = 1 - e3_bal[0] / e0_bal[0]
        saving_mem = 1 - e3_mem[0] / e0_mem[0]
        assert saving_mem > saving_bal  # the idle flop pipeline pays less

    def test_slope_speeds_up_cap_bound_work(self, simple_machine):
        # Inside the cap region but off exact balance (at I = B_tau both
        # utilisations are 1 and the effect vanishes): scaled energy
        # means less throttling.
        Q = 1e10
        W = 7.0 * Q  # cap region is [5, 20] flop/B; u_flop = 0.7
        t0, _ = predict(simple_machine, np.array([W]), np.array([Q]), 0.0)
        t3, _ = predict(simple_machine, np.array([W]), np.array([Q]), 0.3)
        assert t3[0] < t0[0]


class TestSlopeRecovery:
    @pytest.mark.parametrize("true_slope", [0.0, 0.15])
    def test_recovers_slope_on_clean_campaign(self, true_slope):
        cfg = clean_config("arndale-gpu", true_slope)
        campaign = run_campaign(cfg, seed=11, include_double=False)
        fitted = fit_campaign(campaign)
        um = fit_slope(fitted.capped, fitted.fit_observations)
        assert um.slope == pytest.approx(true_slope, abs=0.03)

    def test_unshrinks_marginal_energies(self):
        """The plain capped fit absorbs the utilisation effect into
        shrunken epsilons; the joint fit restores them."""
        cfg = clean_config("arndale-gpu", 0.15)
        campaign = run_campaign(cfg, seed=11, include_double=False)
        fitted = fit_campaign(campaign)
        truth = cfg.truth
        plain_dev = abs(fitted.capped.params.eps_flop - truth.eps_flop)
        um = fit_slope(fitted.capped, fitted.fit_observations)
        joint_dev = abs(um.base.eps_flop - truth.eps_flop)
        assert joint_dev < plain_dev
        assert um.base.eps_flop == pytest.approx(truth.eps_flop, rel=0.05)

    def test_requires_capped_base(self):
        cfg = clean_config("arndale-gpu", 0.1)
        campaign = run_campaign(cfg, seed=3, include_double=False)
        fitted = fit_campaign(campaign)
        with pytest.raises(ValueError, match="capped"):
            fit_slope(fitted.uncapped, fitted.fit_observations)

    def test_realistic_platform_confounding_is_bounded(self):
        """On the fully-realistic Arndale GPU the slope estimate is
        attenuated by the other cap-bending effects (the documented
        confounding) but the model's fit never degrades much."""
        fitted = fit_campaign(
            run_campaign(platform("arndale-gpu"), seed=11, include_double=False)
        )
        obs = fitted.fit_observations
        um = fit_slope(fitted.capped, obs)
        assert 0.0 <= um.slope <= 0.3
        plain = UtilisationModel(
            base=fitted.capped.params, slope=0.0, rms_energy_residual=0.0
        )
        plain_err = np.median(np.abs(plain.power_errors(obs)))
        joint_err = np.median(np.abs(um.power_errors(obs)))
        assert joint_err <= plain_err + 0.02


class TestUtilisationModelObject:
    def test_power_errors_scope(self, simple_machine):
        from repro.core.fitting import FitObservations

        W = np.concatenate([np.logspace(9, 12, 10), [0.0]])
        Q = np.concatenate([np.full(10, 1e10), [1e10]])
        T = np.asarray(model.time(simple_machine, W, Q))
        E = np.asarray(model.energy(simple_machine, W, Q))
        obs = FitObservations(W=W, Q=Q, T=T, E=E)
        um = UtilisationModel(base=simple_machine, slope=0.0, rms_energy_residual=0.0)
        errors = um.power_errors(obs)
        assert len(errors) == 10  # the flop-free row is out of scope
        assert np.all(np.abs(errors) < 1e-9)
