"""Unit tests for repro.core.fitting."""

import math

import numpy as np
import pytest

from repro.core import model
from repro.core.fitting import (
    FitObservations,
    fit_cache_level,
    fit_machine,
    fit_random_access,
)
from repro.core.params import MachineParams


def synthetic_observations(
    machine: MachineParams,
    intensities=None,
    *,
    noise: float = 0.0,
    seed: int = 0,
    capped: bool = True,
    include_pure: bool = True,
) -> FitObservations:
    """Closed-form (optionally noisy) observations from a known machine."""
    rng = np.random.default_rng(seed)
    grid = (
        np.logspace(-3, 7, 30, base=2) if intensities is None else np.asarray(intensities)
    )
    Q = np.full(len(grid), 1e9)
    W = grid * Q
    if include_pure:
        W = np.concatenate([W, [1e11, 1e11], [0.0, 0.0]])
        Q = np.concatenate([Q, [0.0, 0.0], [1e10, 1e10]])
    T = np.asarray(model.time(machine, W, Q, capped=capped), dtype=float)
    E = np.asarray(model.energy(machine, W, Q, capped=capped), dtype=float)
    if noise:
        T = T * np.exp(rng.normal(0, noise, len(T)))
        E = E * np.exp(rng.normal(0, noise, len(E)))
    return FitObservations(W=W, Q=Q, T=T, E=E)


class TestFitObservations:
    def test_validates_lengths(self):
        with pytest.raises(ValueError, match="equal lengths"):
            FitObservations(
                W=np.ones(8), Q=np.ones(8), T=np.ones(8), E=np.ones(7)
            )

    def test_requires_minimum_count(self):
        with pytest.raises(ValueError, match="at least"):
            FitObservations(
                W=np.ones(3), Q=np.ones(3), T=np.ones(3), E=np.ones(3)
            )

    def test_rejects_nonpositive_measurements(self):
        with pytest.raises(ValueError, match="positive"):
            FitObservations(
                W=np.ones(8), Q=np.ones(8), T=np.zeros(8), E=np.ones(8)
            )

    def test_requires_both_work_kinds(self):
        with pytest.raises(ValueError, match="both flops and traffic"):
            FitObservations(
                W=np.ones(8), Q=np.zeros(8), T=np.ones(8), E=np.ones(8)
            )

    def test_cache_traffic_validation(self):
        with pytest.raises(ValueError, match="length mismatch"):
            FitObservations(
                W=np.ones(8),
                Q=np.ones(8),
                T=np.ones(8),
                E=np.ones(8),
                cache_traffic={"L1": np.ones(7)},
            )

    def test_all_zero_random_column_dropped(self):
        obs = FitObservations(
            W=np.ones(8),
            Q=np.ones(8),
            T=np.ones(8),
            E=np.ones(8),
            random_accesses=np.zeros(8),
        )
        assert not obs.has_random

    def test_intensity_with_zero_q(self):
        obs = FitObservations(
            W=np.ones(8),
            Q=np.array([1.0] * 7 + [0.0]),
            T=np.ones(8),
            E=np.ones(8),
        )
        assert math.isinf(obs.intensity[-1])


class TestExactRecovery:
    """On noiseless closed-form data the fit must recover the machine."""

    @pytest.mark.parametrize("capped", [True, False])
    def test_recovers_clean_machine(self, simple_machine, capped):
        machine = simple_machine if capped else simple_machine.uncapped()
        obs = synthetic_observations(machine, capped=capped)
        fit = fit_machine(obs, capped=capped, name="rec")
        assert fit.params.tau_flop == pytest.approx(machine.tau_flop, rel=1e-6)
        assert fit.params.tau_mem == pytest.approx(machine.tau_mem, rel=1e-6)
        assert fit.params.eps_flop == pytest.approx(machine.eps_flop, rel=1e-3)
        assert fit.params.eps_mem == pytest.approx(machine.eps_mem, rel=1e-3)
        assert fit.params.pi1 == pytest.approx(machine.pi1, rel=1e-3)
        if capped:
            assert fit.params.delta_pi == pytest.approx(
                machine.delta_pi, rel=1e-2
            )

    def test_recovery_under_noise(self, simple_machine):
        obs = synthetic_observations(simple_machine, noise=0.01, seed=3)
        fit = fit_machine(obs, capped=True)
        assert fit.params.eps_mem == pytest.approx(
            simple_machine.eps_mem, rel=0.1
        )
        assert fit.params.pi1 == pytest.approx(simple_machine.pi1, rel=0.05)

    def test_uncapped_fit_overpredicts_on_capped_data(self, simple_machine):
        obs = synthetic_observations(simple_machine, capped=True)
        unc = fit_machine(obs, capped=False)
        errors = unc.relative_errors(obs)["performance"]
        # Anchored peaks + a binding cap: the uncapped model overpredicts
        # (strongly so inside the cap region, never the other way).
        assert np.max(errors) > 0.2
        assert np.min(errors) > -1e-6
        cap = fit_machine(obs, capped=True)
        cap_errors = cap.relative_errors(obs)["performance"]
        assert np.max(np.abs(cap_errors)) < 0.01
        assert np.max(np.abs(cap_errors)) < np.max(np.abs(errors))

    def test_free_times_fit_deflates_peaks(self, simple_machine):
        """The anchor ablation: with free time costs the uncapped fit
        hides part of the cap by inflating tau (deflating peaks)."""
        obs = synthetic_observations(simple_machine, capped=True)
        free = fit_machine(obs, capped=False, anchor_times=False)
        assert free.params.tau_flop > simple_machine.tau_flop


class TestDiagnosticsAndErrors:
    def test_diagnostics_near_zero_on_clean_data(self, simple_machine):
        obs = synthetic_observations(simple_machine)
        fit = fit_machine(obs, capped=True)
        assert fit.diagnostics.rms_log_residual < 1e-3
        assert fit.diagnostics.n_observations == obs.n

    def test_relative_errors_structure(self, simple_machine):
        obs = synthetic_observations(simple_machine)
        fit = fit_machine(obs, capped=True)
        errors = fit.relative_errors(obs)
        assert set(errors) == {"time", "energy", "performance", "power"}
        assert len(errors["performance"]) == int(np.sum(obs.W > 0))
        assert len(errors["time"]) == obs.n

    def test_predict_consistency(self, simple_machine):
        obs = synthetic_observations(simple_machine)
        fit = fit_machine(obs, capped=True)
        t_hat, e_hat = fit.predict(obs)
        assert np.allclose(t_hat, obs.T, rtol=1e-4)
        assert np.allclose(e_hat, obs.E, rtol=1e-4)


class TestJointHierarchyFit:
    def test_recovers_cache_and_random_params(self, simple_machine):
        m = simple_machine
        # Build runs over DRAM, L1, L2 and random accesses.
        n = 12
        W = np.concatenate([np.logspace(9, 11, n), np.zeros(6)])
        Q = np.concatenate([np.full(n, 1e9), np.zeros(6)])
        l1 = np.zeros(n + 6)
        l1[n : n + 2] = 5e10
        l2 = np.zeros(n + 6)
        l2[n + 2 : n + 4] = 2e10
        rand = np.zeros(n + 6)
        rand[n + 4 :] = 2e7
        l1_cache = m.cache_level("L1")
        l2_cache = m.cache_level("L2")
        t_mem = (
            Q * m.tau_mem
            + l1 * l1_cache.tau_byte
            + l2 * l2_cache.tau_byte
            + rand * m.random.tau_access
        )
        dyn = (
            W * m.eps_flop
            + Q * m.eps_mem
            + l1 * l1_cache.eps_byte
            + l2 * l2_cache.eps_byte
            + rand * m.random.eps_access
        )
        T = np.maximum(np.maximum(W * m.tau_flop, t_mem), dyn / m.delta_pi)
        E = dyn + m.pi1 * T
        obs = FitObservations(
            W=W, Q=Q, T=T, E=E,
            cache_traffic={"L1": l1, "L2": l2},
            random_accesses=rand,
        )
        fit = fit_machine(obs, capped=True)
        fitted_l1 = fit.params.cache_level("L1")
        assert fitted_l1.eps_byte == pytest.approx(l1_cache.eps_byte, rel=0.02)
        assert fitted_l1.bandwidth == pytest.approx(l1_cache.bandwidth, rel=1e-3)
        assert fit.params.random.eps_access == pytest.approx(
            m.random.eps_access, rel=0.02
        )


class TestStandaloneEstimators:
    def test_fit_cache_level(self):
        Q = np.array([1e10, 2e10, 3e10])
        T = Q / 100e9
        pi1 = 5.0
        E = Q * 2e-12 + pi1 * T
        level = fit_cache_level("L1", Q, T, E, pi1=pi1, capacity=32768)
        assert level.eps_byte == pytest.approx(2e-12)
        assert level.bandwidth == pytest.approx(100e9)
        assert level.capacity == 32768

    def test_fit_cache_level_inconsistent_pi1(self):
        Q = np.array([1e10])
        T = Q / 100e9
        E = Q * 2e-12 + 5.0 * T
        with pytest.raises(ValueError, match="non-positive"):
            fit_cache_level("L1", Q, T, E, pi1=50.0)

    def test_fit_random_access(self):
        A = np.array([1e7, 2e7])
        T = A / 100e6
        pi1 = 3.0
        E = A * 10e-9 + pi1 * T
        r = fit_random_access(A, T, E, pi1=pi1)
        assert r.eps_access == pytest.approx(10e-9)
        assert r.rate == pytest.approx(100e6)

    def test_fit_random_access_validation(self):
        with pytest.raises(ValueError):
            fit_random_access(np.array([]), np.array([]), np.array([]), pi1=1.0)


class TestModelFitImmutability:
    """ModelFit rides the shard pool inside FittedPlatform, so it must
    be a frozen dataclass that pickles losslessly (ARCH011)."""

    def test_model_fit_is_frozen(self, simple_machine):
        import dataclasses

        obs = synthetic_observations(simple_machine)
        fit = fit_machine(obs, capped=True)
        assert dataclasses.is_dataclass(fit)
        with pytest.raises(dataclasses.FrozenInstanceError):
            fit.capped = False

    def test_model_fit_pickle_round_trip(self, simple_machine):
        import pickle

        obs = synthetic_observations(simple_machine)
        fit = fit_machine(obs, capped=True)
        clone = pickle.loads(pickle.dumps(fit))
        assert clone.params == fit.params
        t_a, e_a = fit.predict(obs)
        t_b, e_b = clone.predict(obs)
        np.testing.assert_array_equal(t_a, t_b)
        np.testing.assert_array_equal(e_a, e_b)
