"""Unit tests for repro.core.errors (the Fig. 4 machinery)."""

import numpy as np
import pytest

from repro.core.errors import compare_models, error_distribution
from repro.core.fitting import fit_machine

from .test_fitting import synthetic_observations


@pytest.fixture
def capped_data_fits(simple_machine):
    # A dense sweep around the machine's cap region [5, 20] flop/B, so
    # the K-S test has power (as the paper's near-continuous sweep did).
    grid = np.logspace(0, 6, 60, base=2)
    obs = synthetic_observations(
        simple_machine, intensities=grid, noise=0.005, seed=11
    )
    capped = fit_machine(obs, capped=True)
    uncapped = fit_machine(obs, capped=False)
    return obs, capped, uncapped


class TestErrorDistribution:
    def test_basic_fields(self, capped_data_fits):
        obs, capped, _ = capped_data_fits
        dist = error_distribution(capped, obs, platform="simple")
        assert dist.platform == "simple"
        assert dist.model_label == "capped"
        assert dist.metric == "performance"
        assert dist.stats.n == len(dist.errors)

    def test_unknown_metric_rejected(self, capped_data_fits):
        obs, capped, _ = capped_data_fits
        with pytest.raises(ValueError, match="unknown metric"):
            error_distribution(capped, obs, platform="simple", metric="area")

    def test_uncapped_overpredicts(self, capped_data_fits):
        obs, _, uncapped = capped_data_fits
        dist = error_distribution(uncapped, obs, platform="simple")
        assert dist.stats.maximum > 0.2


class TestCompareModels:
    def test_comparison_structure(self, capped_data_fits):
        obs, capped, uncapped = capped_data_fits
        cmp = compare_models(uncapped, capped, obs, platform="simple")
        assert cmp.uncapped.model_label == "uncapped"
        assert cmp.capped.model_label == "capped"
        assert cmp.ks.n1 == cmp.ks.n2

    def test_order_enforced(self, capped_data_fits):
        obs, capped, uncapped = capped_data_fits
        with pytest.raises(ValueError, match="order"):
            compare_models(capped, uncapped, obs, platform="simple")

    def test_capped_improves_on_synthetic_capped_data(self, capped_data_fits):
        obs, capped, uncapped = capped_data_fits
        cmp = compare_models(uncapped, capped, obs, platform="simple")
        assert cmp.spread_improvement > 0 or cmp.median_improvement > 0
        assert cmp.distributions_differ  # clean data, strong cap

    def test_identical_fits_not_flagged(self, simple_machine):
        # Uncapped data: both fits coincide; KS must not reject.
        machine = simple_machine.uncapped()
        obs = synthetic_observations(machine, noise=0.01, seed=5, capped=False)
        capped = fit_machine(obs, capped=True)
        uncapped = fit_machine(obs, capped=False)
        cmp = compare_models(uncapped, capped, obs, platform="simple")
        assert not cmp.distributions_differ
