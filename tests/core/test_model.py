"""Unit tests for repro.core.model (eqs. 1-7)."""

import math

import numpy as np
import pytest

from repro.core import model
from repro.core.model import Regime


class TestTime:
    def test_compute_bound(self, simple_machine):
        # 1e12 flops at 100 Gflop/s = 10 s; memory term smaller.
        t = model.time(simple_machine, 1e12, 1e9, capped=False)
        assert t == pytest.approx(10.0)

    def test_memory_bound(self, simple_machine):
        # 1e11 bytes at 10 GB/s = 10 s; flop term 1e11 * 1e-11 = 1 s.
        t = model.time(simple_machine, 1e11, 1e11, capped=False)
        assert t == pytest.approx(10.0)

    def test_cap_bound(self, simple_machine):
        # At the ridge W = 10 Q: dynamic power demand is 2 W > 1.5 W cap.
        W, Q = 1e12, 1e11
        uncapped = model.time(simple_machine, W, Q, capped=False)
        capped = model.time(simple_machine, W, Q, capped=True)
        dyn = W * simple_machine.eps_flop + Q * simple_machine.eps_mem
        assert capped == pytest.approx(dyn / simple_machine.delta_pi)
        assert capped > uncapped

    def test_capped_never_faster(self, simple_machine):
        W = np.logspace(8, 13, 30)
        Q = np.full_like(W, 1e10)
        t_cap = model.time(simple_machine, W, Q, capped=True)
        t_unc = model.time(simple_machine, W, Q, capped=False)
        assert np.all(t_cap >= t_unc - 1e-30)

    def test_zero_flops(self, simple_machine):
        t = model.time(simple_machine, 0.0, 1e10, capped=False)
        assert t == pytest.approx(1.0)

    def test_rejects_negative_work(self, simple_machine):
        with pytest.raises(ValueError):
            model.time(simple_machine, -1.0, 1.0)

    def test_scalar_in_scalar_out(self, simple_machine):
        assert isinstance(model.time(simple_machine, 1e9, 1e9), float)

    def test_array_broadcast(self, simple_machine):
        W = np.array([1e9, 1e10, 1e11])
        t = model.time(simple_machine, W, 1e9)
        assert t.shape == (3,)
        assert np.all(np.diff(t) > 0)

    def test_double_precision_slower(self, simple_machine):
        ts = model.time(simple_machine, 1e12, 0.0, precision="single")
        td = model.time(simple_machine, 1e12, 0.0, precision="double")
        assert td == pytest.approx(2.0 * ts)

    def test_double_unavailable_raises(self, titan):
        stripped = titan.renamed("t")
        assert stripped.tau_flop_double is not None  # titan has doubles
        from dataclasses import replace

        nod = replace(stripped, tau_flop_double=None, eps_flop_double=None)
        with pytest.raises(ValueError, match="double"):
            model.time(nod, 1e9, 1e9, precision="double")

    def test_unknown_precision_raises(self, simple_machine):
        with pytest.raises(ValueError, match="precision"):
            model.time(simple_machine, 1e9, 1e9, precision="half")


class TestEnergy:
    def test_decomposition(self, simple_machine):
        W, Q = 1e10, 1e9
        t = model.time(simple_machine, W, Q)
        e = model.energy(simple_machine, W, Q)
        expected = (
            W * simple_machine.eps_flop
            + Q * simple_machine.eps_mem
            + simple_machine.pi1 * t
        )
        assert e == pytest.approx(expected)

    def test_energy_at_least_dynamic(self, simple_machine):
        W = np.logspace(8, 12, 20)
        Q = np.logspace(7, 11, 20)
        e = model.energy(simple_machine, W, Q)
        dyn = W * simple_machine.eps_flop + Q * simple_machine.eps_mem
        assert np.all(e >= dyn)

    def test_capped_energy_not_lower(self, simple_machine):
        W, Q = 1e12, 1e11
        assert model.energy(simple_machine, W, Q, capped=True) >= model.energy(
            simple_machine, W, Q, capped=False
        )


class TestAvgPower:
    def test_equals_energy_over_time(self, simple_machine):
        W, Q = 1e11, 1e10
        p = model.avg_power(simple_machine, W, Q)
        assert p == pytest.approx(
            model.energy(simple_machine, W, Q) / model.time(simple_machine, W, Q)
        )

    def test_rejects_zero_work(self, simple_machine):
        with pytest.raises(ValueError):
            model.avg_power(simple_machine, 0.0, 0.0)

    def test_capped_power_never_exceeds_budget(self, simple_machine):
        W = np.logspace(8, 13, 50)
        Q = np.full_like(W, 1e10)
        p = model.avg_power(simple_machine, W, Q, capped=True)
        budget = simple_machine.pi1 + simple_machine.delta_pi
        assert np.all(p <= budget * (1 + 1e-12))


class TestIntensityForms:
    def test_time_per_flop_matches_explicit(self, simple_machine):
        I = 4.0
        Q = 1e10
        W = I * Q
        per_flop = model.time_per_flop(simple_machine, I)
        assert per_flop * W == pytest.approx(model.time(simple_machine, W, Q))

    def test_energy_per_flop_matches_explicit(self, simple_machine):
        I, Q = 2.0, 1e10
        W = I * Q
        per_flop = model.energy_per_flop(simple_machine, I)
        assert per_flop * W == pytest.approx(model.energy(simple_machine, W, Q))

    def test_performance_is_reciprocal(self, simple_machine):
        I = np.logspace(-3, 9, 40, base=2)
        perf = np.asarray(model.performance(simple_machine, I))
        tpf = np.asarray(model.time_per_flop(simple_machine, I))
        assert np.allclose(perf * tpf, 1.0)

    def test_performance_monotone_nondecreasing(self, simple_machine):
        I = np.logspace(-4, 10, 100, base=2)
        perf = np.asarray(model.performance(simple_machine, I))
        assert np.all(np.diff(perf) >= -1e-6 * perf[:-1])

    def test_performance_saturates_at_peak(self, simple_machine):
        assert model.performance(simple_machine, 1e9) == pytest.approx(
            simple_machine.peak_flops
        )

    def test_infinite_intensity(self, simple_machine):
        assert model.time_per_flop(simple_machine, math.inf) == pytest.approx(
            simple_machine.tau_flop
        )

    def test_rejects_nonpositive_intensity(self, simple_machine):
        with pytest.raises(ValueError):
            model.performance(simple_machine, 0.0)
        with pytest.raises(ValueError):
            model.performance(simple_machine, np.array([1.0, -2.0]))

    def test_flops_per_joule_below_peak(self, simple_machine):
        I = np.logspace(-3, 12, 60, base=2)
        eff = np.asarray(model.flops_per_joule(simple_machine, I))
        assert np.all(eff <= simple_machine.peak_flops_per_joule * (1 + 1e-9))

    def test_flops_per_joule_increases_with_intensity(self, simple_machine):
        eff = np.asarray(
            model.flops_per_joule(simple_machine, np.logspace(-2, 8, 50, base=2))
        )
        assert np.all(np.diff(eff) >= -1e-9 * eff[:-1])


class TestPowerCurve:
    def test_closed_form_matches_ratio_all_platforms(self, platforms):
        I = np.logspace(-4, 10, 200, base=2)
        for cfg in platforms.values():
            p = cfg.truth
            direct = np.asarray(model.energy_per_flop(p, I)) / np.asarray(
                model.time_per_flop(p, I)
            )
            closed = np.asarray(model.power_curve(p, I))
            assert np.allclose(direct, closed, rtol=1e-12), p.name

    def test_uncapped_peak_at_balance(self, uncapped_machine):
        m = uncapped_machine
        peak = model.power_curve(m, m.time_balance)
        assert peak == pytest.approx(m.pi1 + m.pi_flop + m.pi_mem)

    def test_capped_plateau_value(self, simple_machine):
        m = simple_machine
        mid = math.sqrt(m.time_balance_lower * m.time_balance_upper)
        assert model.power_curve(m, mid) == pytest.approx(m.pi1 + m.delta_pi)

    def test_limits(self, simple_machine):
        m = simple_machine
        assert model.power_curve(m, 1e12) == pytest.approx(m.pi1 + m.pi_flop, rel=1e-6)
        low = model.power_curve(m, 1e-12)
        assert low == pytest.approx(m.pi1 + m.pi_mem, rel=1e-3)

    def test_power_bounded_below_by_pi1(self, platforms):
        I = np.logspace(-4, 10, 100, base=2)
        for cfg in platforms.values():
            p = cfg.truth
            power = np.asarray(model.power_curve(p, I))
            assert np.all(power >= p.pi1)


class TestRegime:
    def test_scalar_returns_enum(self, simple_machine):
        r = model.regime(simple_machine, 1.0)
        assert isinstance(r, Regime)

    def test_three_regimes_on_capped_machine(self, simple_machine):
        m = simple_machine
        assert model.regime(m, 1.0) is Regime.MEMORY
        assert model.regime(m, 10.0) is Regime.CAP
        assert model.regime(m, 100.0) is Regime.COMPUTE

    def test_no_cap_regime_when_uncapped(self, uncapped_machine):
        I = np.logspace(-4, 10, 100, base=2)
        codes = model.regime(uncapped_machine, I)
        assert int(Regime.CAP) not in set(codes.tolist())

    def test_boundaries_resolve_outward(self, simple_machine):
        m = simple_machine
        assert model.regime(m, m.time_balance_lower) is Regime.MEMORY
        assert model.regime(m, m.time_balance_upper) is Regime.COMPUTE

    def test_regime_matches_binding_term(self, simple_machine):
        m = simple_machine
        for I in np.logspace(-3, 9, 60, base=2):
            Q = 1e10
            W = I * Q
            t_f = W * m.tau_flop
            t_m = Q * m.tau_mem
            t_c = (W * m.eps_flop + Q * m.eps_mem) / m.delta_pi
            binding = max(t_f, t_m, t_c)
            r = model.regime(m, float(I))
            if binding == t_c and r is not Regime.CAP:
                # Boundary points may tie; allow equality with neighbours.
                assert math.isclose(binding, max(t_f, t_m), rel_tol=1e-9)
            elif binding == t_f and t_f > t_c:
                assert r is Regime.COMPUTE
            elif binding == t_m and t_m > t_c:
                assert r is Regime.MEMORY
