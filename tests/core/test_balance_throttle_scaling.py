"""Unit tests for repro.core.balance, throttle and scaling."""

import math

import numpy as np
import pytest

from repro.core import model
from repro.core.balance import summarise_balance
from repro.core.scaling import (
    compare_power_matched,
    ensemble,
    power_matched_count,
    power_matched_ensemble,
)
from repro.core.throttle import (
    DEFAULT_CAP_FACTORS,
    cap_for_power_budget,
    performance_retention,
    power_retention,
    throttle_scenario,
)


class TestBalanceSummary:
    def test_fields_match_params(self, simple_machine):
        b = summarise_balance(simple_machine)
        assert b.time_balance == simple_machine.time_balance
        assert b.cap_lower == simple_machine.time_balance_lower
        assert b.cap_upper == simple_machine.time_balance_upper
        assert b.cap_binds

    def test_cap_width_octaves(self, simple_machine):
        b = summarise_balance(simple_machine)
        # interval [5, 20] -> 2 octaves.
        assert b.cap_width_octaves == pytest.approx(2.0)

    def test_uncapped_width_zero(self, uncapped_machine):
        assert summarise_balance(uncapped_machine).cap_width_octaves == 0.0

    def test_ridge_deficit(self, simple_machine):
        b = summarise_balance(simple_machine)
        assert b.ridge_power_deficit == pytest.approx(2.0 / 1.5)

    def test_reachable_fractions(self, simple_machine):
        b = summarise_balance(simple_machine)
        # dpi = 1.5 exceeds both pi_flop = pi_mem = 1: peaks reachable.
        assert b.reachable_peak_fraction == 1.0
        assert b.reachable_bandwidth_fraction == 1.0
        tight = summarise_balance(simple_machine.with_cap(0.5))
        assert tight.reachable_peak_fraction == pytest.approx(0.5)
        assert tight.reachable_bandwidth_fraction == pytest.approx(0.5)

    def test_all_platforms_cap_interval_ordered(self, platforms):
        for cfg in platforms.values():
            b = summarise_balance(cfg.truth)
            assert b.cap_lower <= b.time_balance <= b.cap_upper


class TestThrottle:
    def test_scenario_factors(self, simple_machine):
        grid = np.logspace(-2, 7, 20, base=2)
        sc = throttle_scenario(simple_machine, grid)
        assert sc.factors == DEFAULT_CAP_FACTORS
        assert sc.curve(0.5).params.delta_pi == pytest.approx(0.75)

    def test_unknown_factor_raises(self, simple_machine):
        sc = throttle_scenario(simple_machine, [1.0, 2.0])
        with pytest.raises(KeyError):
            sc.curve(0.3)

    def test_rejects_uncapped(self, uncapped_machine):
        with pytest.raises(ValueError, match="uncapped"):
            throttle_scenario(uncapped_machine, [1.0])

    def test_power_reduction_sublinear(self, platforms):
        grid = [1.0]
        for cfg in platforms.values():
            sc = throttle_scenario(cfg.truth, grid)
            for factor in (0.5, 0.25, 0.125):
                assert sc.power_reduction(factor) > factor

    def test_performance_retention_bounds(self, titan):
        r = performance_retention(titan, 0.25, 0.125)
        assert 0.0 < r <= 1.0

    def test_retention_is_one_when_cap_slack(self, simple_machine):
        # At very low intensity the dynamic demand is just above pi_mem
        # (1 W); a cap of 0.8 * 1.5 = 1.2 W still covers it.
        r = performance_retention(simple_machine, 0.01, 0.8)
        assert r == pytest.approx(1.0)

    def test_power_retention_formula(self, simple_machine):
        expected = (5.0 + 0.75) / (5.0 + 1.5)
        assert power_retention(simple_machine, 0.5) == pytest.approx(expected)

    def test_power_retention_rejects_uncapped(self, uncapped_machine):
        with pytest.raises(ValueError):
            power_retention(uncapped_machine, 0.5)

    def test_cap_for_power_budget(self, titan):
        bounded = cap_for_power_budget(titan, 140.0)
        assert bounded.pi1 + bounded.delta_pi == pytest.approx(140.0)

    def test_cap_for_budget_below_pi1_raises(self, titan):
        with pytest.raises(ValueError, match="constant power"):
            cap_for_power_budget(titan, titan.pi1)

    def test_titan_section_vd_number(self, titan):
        assert performance_retention(titan, 0.25, 0.125) == pytest.approx(
            0.31, abs=0.01
        )


class TestEnsemble:
    def test_extensive_and_intensive_quantities(self, arndale_gpu):
        agg = ensemble(arndale_gpu, 4)
        assert agg.peak_flops == pytest.approx(4 * arndale_gpu.peak_flops)
        assert agg.peak_bandwidth == pytest.approx(4 * arndale_gpu.peak_bandwidth)
        assert agg.pi1 == pytest.approx(4 * arndale_gpu.pi1)
        assert agg.delta_pi == pytest.approx(4 * arndale_gpu.delta_pi)
        assert agg.eps_flop == arndale_gpu.eps_flop
        assert agg.eps_mem == arndale_gpu.eps_mem

    def test_cache_and_random_scaling(self, arndale_gpu):
        agg = ensemble(arndale_gpu, 3)
        base_l1 = arndale_gpu.cache_level("L1")
        assert agg.cache_level("L1").bandwidth == pytest.approx(
            3 * base_l1.bandwidth
        )
        assert agg.cache_level("L1").eps_byte == base_l1.eps_byte
        assert agg.random.rate == pytest.approx(3 * arndale_gpu.random.rate)

    def test_balances_preserved(self, arndale_gpu):
        agg = ensemble(arndale_gpu, 7)
        assert agg.time_balance == pytest.approx(arndale_gpu.time_balance)
        assert agg.energy_balance == pytest.approx(arndale_gpu.energy_balance)

    def test_fractional_sizes_allowed(self, arndale_gpu):
        agg = ensemble(arndale_gpu, 2.5)
        assert agg.peak_flops == pytest.approx(2.5 * arndale_gpu.peak_flops)

    def test_rejects_nonpositive(self, arndale_gpu):
        with pytest.raises(ValueError):
            ensemble(arndale_gpu, 0)

    def test_default_name(self, arndale_gpu):
        assert ensemble(arndale_gpu, 4).name == "4 x Arndale GPU"


class TestPowerMatching:
    def test_fig1_count(self, titan, arndale_gpu):
        assert power_matched_count(arndale_gpu, titan) == 47

    def test_fractional_count(self, titan, arndale_gpu):
        count = power_matched_count(arndale_gpu, titan, integral=False)
        assert count == pytest.approx(287.0 / 6.11, rel=1e-3)

    def test_explicit_budget(self, titan, arndale_gpu):
        assert power_matched_count(arndale_gpu, titan, budget=140.0) == 23

    def test_uncapped_reference_needs_budget(self, titan, arndale_gpu):
        with pytest.raises(ValueError, match="budget"):
            power_matched_count(arndale_gpu, titan.uncapped())

    def test_uncapped_block_rejected(self, titan, arndale_gpu):
        with pytest.raises(ValueError, match="finite cap"):
            power_matched_count(arndale_gpu.uncapped(), titan)

    def test_power_matched_ensemble(self, titan, arndale_gpu):
        agg = power_matched_ensemble(arndale_gpu, titan)
        budget = titan.pi1 + titan.delta_pi
        assert agg.pi1 + agg.delta_pi == pytest.approx(47 * 6.11, rel=1e-3)
        assert abs(agg.pi1 + agg.delta_pi - budget) / budget < 0.02

    def test_comparison_record(self, titan, arndale_gpu):
        cmp = compare_power_matched(arndale_gpu, titan)
        assert cmp.count == 47
        assert cmp.peak_ratio < 0.5
        assert 1.5 < cmp.bandwidth_ratio < 1.8
        assert cmp.power_ratio == pytest.approx(1.0, abs=0.02)

    def test_comparison_ratios_match_model(self, titan, arndale_gpu):
        cmp = compare_power_matched(arndale_gpu, titan)
        direct = float(
            model.performance(cmp.aggregate, 1.0) / model.performance(titan, 1.0)
        )
        assert cmp.performance_ratio(1.0) == pytest.approx(direct)
        assert cmp.energy_efficiency_ratio(0.5) > 1.0
