"""Unit tests for repro.core.rooflines."""

import math

import numpy as np
import pytest

from repro.core import model, rooflines


class TestIntensityGrid:
    def test_endpoints_included(self):
        grid = rooflines.intensity_grid(0.125, 512.0, 8)
        assert grid[0] == pytest.approx(0.125)
        assert grid[-1] == pytest.approx(512.0)

    def test_log_spacing(self):
        grid = rooflines.intensity_grid(1.0, 16.0, 1)
        assert np.allclose(np.diff(np.log2(grid)), np.log2(grid[1] / grid[0]))

    def test_density(self):
        grid = rooflines.intensity_grid(1.0, 2.0 ** 10, 4)
        assert len(grid) == 41

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            rooflines.intensity_grid(2.0, 1.0)
        with pytest.raises(ValueError):
            rooflines.intensity_grid(0.0, 1.0)
        with pytest.raises(ValueError):
            rooflines.intensity_grid(1.0, 2.0, 0)


class TestSampleCurve:
    def test_matches_model(self, simple_machine):
        grid = rooflines.intensity_grid(0.25, 64.0, 2)
        curve = rooflines.sample_curve(simple_machine, grid)
        assert np.allclose(
            curve.performance, model.performance(simple_machine, grid)
        )
        assert np.allclose(curve.power, model.power_curve(simple_machine, grid))

    def test_metric_accessor(self, simple_machine):
        curve = rooflines.sample_curve(simple_machine)
        assert np.array_equal(curve.metric("performance"), curve.performance)
        with pytest.raises(ValueError, match="unknown metric"):
            curve.metric("latency")

    def test_normalised(self, simple_machine):
        curve = rooflines.sample_curve(simple_machine)
        norm = curve.normalised("performance", simple_machine.peak_flops)
        assert np.max(norm) <= 1.0 + 1e-12
        with pytest.raises(ValueError):
            curve.normalised("performance", 0.0)

    def test_length_mismatch_rejected(self, simple_machine):
        with pytest.raises(ValueError, match="length"):
            rooflines.RooflineCurve(
                params=simple_machine,
                intensity=np.array([1.0, 2.0]),
                performance=np.array([1.0]),
                flops_per_joule=np.array([1.0, 2.0]),
                power=np.array([1.0, 2.0]),
            )


class TestCrossovers:
    def test_titan_vs_arndale_energy_crossover(self, titan, arndale_gpu):
        roots = rooflines.crossover_intensities(
            arndale_gpu, titan, "flops_per_joule"
        )
        assert len(roots) == 1
        # The Fig. 1 parity region ends between I = 1 and I = 4.
        assert 1.0 < roots[0] < 4.0

    def test_crossing_is_a_sign_change(self, titan, arndale_gpu):
        root = rooflines.crossover_intensities(
            arndale_gpu, titan, "flops_per_joule"
        )[0]
        below = rooflines.metric_ratio(arndale_gpu, titan, root * 0.9)
        above = rooflines.metric_ratio(arndale_gpu, titan, root * 1.1)
        assert (below - 1.0) * (above - 1.0) < 0

    def test_identical_platforms_no_isolated_crossings(self, titan):
        # Everywhere equal: scan reports no sign changes.
        roots = rooflines.crossover_intensities(titan, titan, "performance")
        # Equality at every grid point registers at most grid artifacts;
        # ensure any reported root still has ratio == 1.
        for r in roots:
            assert rooflines.metric_ratio(titan, titan, r) == pytest.approx(1.0)

    def test_performance_never_crosses_when_dominated(self, titan, arndale_gpu):
        # Titan's performance dominates the Arndale GPU at every intensity.
        roots = rooflines.crossover_intensities(
            titan, arndale_gpu, "performance"
        )
        assert roots == []


class TestParityAndDominance:
    def test_parity_bound_brackets_paper_value(self, titan, arndale_gpu):
        bound = rooflines.parity_upper_bound(
            arndale_gpu, titan, tolerance=0.8
        )
        assert 3.0 < bound < 6.5

    def test_parity_tightening_shrinks_bound(self, titan, arndale_gpu):
        loose = rooflines.parity_upper_bound(arndale_gpu, titan, tolerance=0.7)
        tight = rooflines.parity_upper_bound(arndale_gpu, titan, tolerance=0.9)
        assert tight < loose

    def test_parity_never_below_everywhere(self, titan):
        # A platform is always within tolerance of itself.
        bound = rooflines.parity_upper_bound(titan, titan, tolerance=0.99)
        assert bound == pytest.approx(2.0 ** 12)

    def test_parity_bound_rejects_bad_tolerance(self, titan, arndale_gpu):
        with pytest.raises(ValueError):
            rooflines.parity_upper_bound(arndale_gpu, titan, tolerance=0.0)

    def test_dominance_intervals_cover_range(self, titan, arndale_gpu):
        intervals = rooflines.dominance_intervals(
            arndale_gpu, titan, "flops_per_joule", i_min=0.125, i_max=256.0
        )
        assert intervals[0][0] == pytest.approx(0.125)
        assert intervals[-1][1] == pytest.approx(256.0)
        for (a_lo, a_hi, _), (b_lo, _, _) in zip(intervals, intervals[1:]):
            assert a_hi == pytest.approx(b_lo)

    def test_dominance_winners(self, titan, arndale_gpu):
        intervals = rooflines.dominance_intervals(
            arndale_gpu, titan, "flops_per_joule", i_min=0.125, i_max=256.0
        )
        assert intervals[0][2] == arndale_gpu.name  # wins at low intensity
        assert intervals[-1][2] == titan.name  # wins at high intensity

    def test_metric_function_rejects_unknown(self):
        with pytest.raises(ValueError):
            rooflines.metric_function("latency")
