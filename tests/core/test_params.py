"""Unit tests for repro.core.params."""

import math

import pytest

from repro.core.params import CacheLevelParams, MachineParams, RandomAccessParams


def make(**overrides):
    base = dict(
        name="m",
        tau_flop=1e-11,
        tau_mem=1e-10,
        eps_flop=1e-11,
        eps_mem=1e-10,
        pi1=10.0,
        delta_pi=2.0,
    )
    base.update(overrides)
    return MachineParams(**base)


class TestValidation:
    def test_accepts_valid(self):
        assert make().name == "m"

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="name"):
            make(name="")

    @pytest.mark.parametrize("field", ["tau_flop", "tau_mem", "eps_flop", "eps_mem"])
    def test_rejects_nonpositive_costs(self, field):
        with pytest.raises(ValueError, match=field):
            make(**{field: 0.0})
        with pytest.raises(ValueError, match=field):
            make(**{field: -1.0})

    def test_rejects_negative_pi1(self):
        with pytest.raises(ValueError, match="pi1"):
            make(pi1=-0.1)

    def test_zero_pi1_allowed(self):
        assert make(pi1=0.0).pi1 == 0.0

    def test_rejects_nonpositive_delta_pi(self):
        with pytest.raises(ValueError, match="delta_pi"):
            make(delta_pi=0.0)

    def test_infinite_delta_pi_allowed(self):
        assert not make(delta_pi=math.inf).is_capped

    def test_rejects_nan_cost(self):
        with pytest.raises(ValueError):
            make(tau_flop=float("nan"))

    def test_double_params_must_come_together(self):
        with pytest.raises(ValueError, match="together"):
            make(tau_flop_double=1e-11)
        with pytest.raises(ValueError, match="together"):
            make(eps_flop_double=1e-11)

    def test_duplicate_cache_names_rejected(self):
        level = CacheLevelParams("L1", eps_byte=1e-12, bandwidth=1e9)
        with pytest.raises(ValueError, match="duplicate"):
            make(caches=(level, level))


class TestCacheLevelParams:
    def test_tau_and_power(self):
        level = CacheLevelParams("L1", eps_byte=2e-12, bandwidth=100e9)
        assert level.tau_byte == pytest.approx(1e-11)
        assert level.power == pytest.approx(0.2)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            CacheLevelParams("L1", eps_byte=1e-12, bandwidth=1e9, capacity=0)

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="name"):
            CacheLevelParams("", eps_byte=1e-12, bandwidth=1e9)


class TestRandomAccessParams:
    def test_tau_access(self):
        r = RandomAccessParams(eps_access=1e-9, rate=1e8)
        assert r.tau_access == pytest.approx(1e-8)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            RandomAccessParams(eps_access=0.0, rate=1e8)
        with pytest.raises(ValueError):
            RandomAccessParams(eps_access=1e-9, rate=0.0)


class TestDerivedQuantities:
    def test_reciprocals(self):
        m = make()
        assert m.peak_flops == pytest.approx(1e11)
        assert m.peak_bandwidth == pytest.approx(1e10)

    def test_powers(self):
        m = make()
        assert m.pi_flop == pytest.approx(1.0)
        assert m.pi_mem == pytest.approx(1.0)

    def test_balances(self):
        m = make()
        assert m.time_balance == pytest.approx(10.0)
        assert m.energy_balance == pytest.approx(10.0)

    def test_cap_binds(self):
        assert make(delta_pi=1.5).cap_binds
        assert not make(delta_pi=2.5).cap_binds
        assert not make(delta_pi=math.inf).cap_binds

    def test_max_power_capped(self):
        assert make(delta_pi=1.5).max_power == pytest.approx(11.5)

    def test_max_power_uncapped_is_dynamic_sum(self):
        assert make(delta_pi=math.inf).max_power == pytest.approx(12.0)

    def test_balance_interval_uncapped_degenerates(self):
        m = make(delta_pi=math.inf)
        assert m.time_balance_lower == m.time_balance == m.time_balance_upper

    def test_balance_interval_brackets_balance(self):
        m = make(delta_pi=1.5)
        assert m.time_balance_lower <= m.time_balance <= m.time_balance_upper
        assert m.time_balance_lower < m.time_balance_upper

    def test_balance_interval_values(self):
        # B_tau = 10, pi_f = pi_m = 1, dpi = 1.5:
        # upper = 10 * max(1, 1/0.5) = 20; lower = 10 * min(1, 0.5/1) = 5.
        m = make(delta_pi=1.5)
        assert m.time_balance_upper == pytest.approx(20.0)
        assert m.time_balance_lower == pytest.approx(5.0)

    def test_flop_power_unreachable_gives_infinite_upper(self):
        m = make(delta_pi=0.9)  # below pi_flop
        assert math.isinf(m.time_balance_upper)

    def test_mem_power_unreachable_gives_zero_lower(self):
        m = make(delta_pi=0.9)  # below pi_mem
        assert m.time_balance_lower == 0.0

    def test_effective_taus_with_binding_cap(self):
        m = make(delta_pi=0.5)  # below both pi_flop and pi_mem
        assert m.effective_tau_flop == pytest.approx(m.eps_flop / 0.5)
        assert m.effective_tau_mem == pytest.approx(m.eps_mem / 0.5)

    def test_effective_taus_without_cap(self):
        m = make(delta_pi=math.inf)
        assert m.effective_tau_flop == m.tau_flop
        assert m.effective_tau_mem == m.tau_mem

    def test_peak_efficiencies(self):
        m = make(delta_pi=2.5)  # cap does not bind at the extremes
        expected_flop = 1.0 / (m.eps_flop + m.pi1 * m.tau_flop)
        expected_mem = 1.0 / (m.eps_mem + m.pi1 * m.tau_mem)
        assert m.peak_flops_per_joule == pytest.approx(expected_flop)
        assert m.peak_bytes_per_joule == pytest.approx(expected_mem)

    def test_constant_power_fraction(self):
        assert make(pi1=10, delta_pi=10).constant_power_fraction == pytest.approx(0.5)
        assert make(delta_pi=math.inf).constant_power_fraction == 0.0


class TestDerivedPlatforms:
    def test_with_cap(self):
        m = make().with_cap(0.7)
        assert m.delta_pi == pytest.approx(0.7)

    def test_with_cap_scaled(self):
        m = make(delta_pi=2.0).with_cap_scaled(0.25)
        assert m.delta_pi == pytest.approx(0.5)

    def test_with_cap_scaled_rejects_uncapped(self):
        with pytest.raises(ValueError, match="uncapped"):
            make(delta_pi=math.inf).with_cap_scaled(0.5)

    def test_uncapped(self):
        assert not make().uncapped().is_capped

    def test_renamed(self):
        m = make().renamed("other", "desc")
        assert m.name == "other"
        assert m.description == "desc"
        assert m.tau_flop == make().tau_flop

    def test_cache_level_lookup(self, simple_machine):
        assert simple_machine.cache_level("L1").name == "L1"
        with pytest.raises(KeyError, match="L3"):
            simple_machine.cache_level("L3")

    def test_from_throughputs_round_trip(self, simple_machine):
        assert simple_machine.peak_flops == pytest.approx(100e9)
        assert simple_machine.peak_bandwidth == pytest.approx(10e9)
        assert simple_machine.tau_flop_double == pytest.approx(1.0 / 50e9)
