"""Property-based tests (hypothesis) on the core model invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import model
from repro.core.params import MachineParams

# Physical parameters spanning the realistic ranges of Table I
# (mobile boards to desktop GPUs), in SI units.
taus_flop = st.floats(min_value=1e-13, max_value=1e-9)
taus_mem = st.floats(min_value=1e-12, max_value=1e-8)
eps_flops = st.floats(min_value=1e-12, max_value=1e-9)
eps_mems = st.floats(min_value=1e-11, max_value=1e-8)
pi1s = st.floats(min_value=0.0, max_value=300.0)
caps = st.one_of(st.floats(min_value=0.1, max_value=500.0), st.just(math.inf))
intensities = st.floats(min_value=2.0 ** -10, max_value=2.0 ** 14)


@st.composite
def machines(draw):
    return MachineParams(
        name="hyp",
        tau_flop=draw(taus_flop),
        tau_mem=draw(taus_mem),
        eps_flop=draw(eps_flops),
        eps_mem=draw(eps_mems),
        pi1=draw(pi1s),
        delta_pi=draw(caps),
    )


@given(machines(), intensities)
@settings(max_examples=200)
def test_time_at_least_component_times(m, I):
    Q = 1e9
    W = I * Q
    t = model.time(m, W, Q)
    assert t >= W * m.tau_flop * (1 - 1e-12)
    assert t >= Q * m.tau_mem * (1 - 1e-12)


@given(machines(), intensities)
@settings(max_examples=200)
def test_capped_time_never_below_uncapped(m, I):
    Q = 1e9
    W = I * Q
    assert model.time(m, W, Q, capped=True) >= model.time(
        m, W, Q, capped=False
    ) * (1 - 1e-12)


@given(machines(), intensities)
@settings(max_examples=200)
def test_average_power_within_model_bounds(m, I):
    power = model.power_curve(m, I)
    assert power >= m.pi1 * (1 - 1e-12)
    ceiling = m.pi1 + min(
        m.delta_pi if m.is_capped else math.inf, m.pi_flop + m.pi_mem
    )
    assert power <= ceiling * (1 + 1e-9)


@given(machines(), intensities)
@settings(max_examples=200)
def test_power_closed_form_consistent(m, I):
    direct = model.energy_per_flop(m, I) / model.time_per_flop(m, I)
    closed = model.power_curve(m, I)
    assert math.isclose(direct, closed, rel_tol=1e-9)


@given(machines(), intensities, intensities)
@settings(max_examples=200)
def test_performance_monotone_in_intensity(m, i1, i2):
    lo, hi = min(i1, i2), max(i1, i2)
    assert model.performance(m, lo) <= model.performance(m, hi) * (1 + 1e-12)


@given(machines(), intensities, intensities)
@settings(max_examples=200)
def test_efficiency_monotone_in_intensity(m, i1, i2):
    lo, hi = min(i1, i2), max(i1, i2)
    assert model.flops_per_joule(m, lo) <= model.flops_per_joule(m, hi) * (
        1 + 1e-12
    )


@given(machines(), intensities)
@settings(max_examples=200)
def test_energy_decomposition_identity(m, I):
    Q = 1e9
    W = I * Q
    e = model.energy(m, W, Q)
    t = model.time(m, W, Q)
    assert math.isclose(
        e, W * m.eps_flop + Q * m.eps_mem + m.pi1 * t, rel_tol=1e-12
    )


@given(machines(), intensities, st.floats(min_value=0.1, max_value=10.0))
@settings(max_examples=200)
def test_work_scaling_linearity(m, I, scale):
    """Doubling the work doubles time and energy (the model has no
    fixed per-run cost)."""
    Q = 1e9
    W = I * Q
    assert math.isclose(
        model.time(m, W * scale, Q * scale),
        scale * model.time(m, W, Q),
        rel_tol=1e-12,
    )
    assert math.isclose(
        model.energy(m, W * scale, Q * scale),
        scale * model.energy(m, W, Q),
        rel_tol=1e-12,
    )


@given(machines(), intensities)
@settings(max_examples=200)
def test_regime_consistent_with_power(m, I):
    """Cap-bound intensities run exactly at the cap; others below it."""
    if not m.is_capped:
        return
    r = model.regime(m, I)
    power = model.power_curve(m, I)
    if r == model.Regime.CAP:
        assert math.isclose(power, m.pi1 + m.delta_pi, rel_tol=1e-9)
    else:
        assert power <= m.pi1 + m.delta_pi + 1e-9 * max(1.0, power)


@given(machines(), intensities, st.floats(min_value=0.05, max_value=1.0))
@settings(max_examples=200)
def test_tighter_cap_never_helps(m, I, factor):
    if not m.is_capped:
        return
    tight = m.with_cap_scaled(factor)
    assert model.performance(tight, I) <= model.performance(m, I) * (1 + 1e-12)
    assert model.flops_per_joule(tight, I) <= model.flops_per_joule(m, I) * (
        1 + 1e-12
    )


@given(machines(), intensities, st.integers(min_value=1, max_value=64))
@settings(max_examples=200)
def test_ensemble_scales_performance_linearly(m, I, n):
    from repro.core.scaling import ensemble

    agg = ensemble(m, n)
    assert math.isclose(
        model.performance(agg, I), n * model.performance(m, I), rel_tol=1e-9
    )
    # Per-flop energy cost is intensive: unchanged by aggregation.
    assert math.isclose(
        model.flops_per_joule(agg, I),
        model.flops_per_joule(m, I),
        rel_tol=1e-9,
    )
