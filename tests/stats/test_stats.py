"""Unit tests for repro.stats (K-S, descriptive, bootstrap, regression)."""

import numpy as np
import pytest
import scipy.stats
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.bootstrap import bootstrap_ci, bootstrap_paired_ci
from repro.stats.descriptive import boxplot_stats, pearson, quantile, spearman
from repro.stats.ks import kolmogorov_sf, ks_2sample, ks_statistic
from repro.stats.regression import fit_log_params, nonnegative_lstsq


class TestKS:
    def test_identical_samples_zero_statistic(self):
        x = np.arange(10.0)
        assert ks_statistic(x, x) == 0.0

    def test_disjoint_samples_statistic_one(self):
        assert ks_statistic([1.0, 2.0], [10.0, 20.0]) == 1.0

    def test_matches_scipy_statistic(self, rng):
        for _ in range(20):
            a = rng.normal(0, 1, rng.integers(5, 60))
            b = rng.normal(0.3, 1.2, rng.integers(5, 60))
            ours = ks_statistic(a, b)
            theirs = scipy.stats.ks_2samp(a, b).statistic
            assert ours == pytest.approx(theirs, abs=1e-12)

    def test_pvalue_close_to_scipy_asymptotic(self, rng):
        for _ in range(10):
            a = rng.normal(0, 1, 80)
            b = rng.normal(0.25, 1, 90)
            ours = ks_2sample(a, b).pvalue
            theirs = scipy.stats.ks_2samp(a, b, method="asymp").pvalue
            assert ours == pytest.approx(theirs, abs=0.03)

    def test_detects_shifted_distribution(self, rng):
        a = rng.normal(0, 1, 200)
        b = rng.normal(1.0, 1, 200)
        assert ks_2sample(a, b).significant()

    def test_same_distribution_usually_not_flagged(self):
        flags = 0
        for seed in range(40):
            rng = np.random.default_rng(seed)
            a = rng.normal(0, 1, 60)
            b = rng.normal(0, 1, 60)
            flags += ks_2sample(a, b).significant()
        assert flags <= 6  # ~5% false positive rate

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_statistic([], [1.0])

    def test_kolmogorov_sf_limits(self):
        assert kolmogorov_sf(0.0) == 1.0
        assert kolmogorov_sf(-1.0) == 1.0
        assert kolmogorov_sf(5.0) < 1e-10
        assert 0 < kolmogorov_sf(1.0) < 1

    def test_kolmogorov_sf_reference_value(self):
        # Q(1.36) ~ 0.049 -- the classic 5% critical point.
        assert kolmogorov_sf(1.358) == pytest.approx(0.05, abs=0.002)

    def test_significant_alpha_validation(self):
        res = ks_2sample([1.0, 2.0, 3.0], [1.5, 2.5, 3.5])
        with pytest.raises(ValueError):
            res.significant(0.0)


class TestDescriptive:
    def test_boxplot_stats_values(self):
        stats = boxplot_stats([1, 2, 3, 4, 5])
        assert stats.median == 3
        assert stats.q25 == 2
        assert stats.q75 == 4
        assert stats.iqr == 2
        assert stats.spread == 4
        assert stats.mean == 3

    def test_boxplot_rejects_empty_and_nonfinite(self):
        with pytest.raises(ValueError):
            boxplot_stats([])
        with pytest.raises(ValueError):
            boxplot_stats([1.0, float("nan")])

    def test_quantile(self):
        assert quantile([1, 2, 3, 4], 0.0) == 1
        assert quantile([1, 2, 3, 4], 1.0) == 4
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)

    def test_pearson_matches_scipy(self, rng):
        x = rng.normal(0, 1, 50)
        y = 0.5 * x + rng.normal(0, 1, 50)
        assert pearson(x, y) == pytest.approx(scipy.stats.pearsonr(x, y)[0])

    def test_pearson_perfect(self):
        x = [1.0, 2.0, 3.0]
        assert pearson(x, x) == pytest.approx(1.0)
        assert pearson(x, [-v for v in x]) == pytest.approx(-1.0)

    def test_pearson_validation(self):
        with pytest.raises(ValueError):
            pearson([1.0], [1.0])
        with pytest.raises(ValueError):
            pearson([1.0, 1.0], [1.0, 2.0])  # zero variance
        with pytest.raises(ValueError):
            pearson([1.0, 2.0], [1.0, 2.0, 3.0])

    def test_spearman_matches_scipy(self, rng):
        x = rng.normal(0, 1, 40)
        y = x ** 3 + rng.normal(0, 0.1, 40)
        assert spearman(x, y) == pytest.approx(
            scipy.stats.spearmanr(x, y).statistic, abs=1e-12
        )

    def test_spearman_handles_ties(self):
        x = [1.0, 1.0, 2.0, 3.0]
        y = [5.0, 5.0, 6.0, 7.0]
        assert spearman(x, y) == pytest.approx(
            scipy.stats.spearmanr(x, y).statistic, abs=1e-12
        )

    def test_spearman_invariant_to_monotone_transform(self, rng):
        x = rng.uniform(1, 10, 30)
        y = rng.uniform(1, 10, 30)
        assert spearman(x, y) == pytest.approx(
            spearman(np.log(x), y ** 2), abs=1e-12
        )


class TestBootstrap:
    def test_ci_contains_estimate(self, rng):
        values = rng.normal(10, 2, 100)
        ci = bootstrap_ci(values, rng=rng)
        assert ci.low <= ci.estimate <= ci.high
        assert ci.contains(ci.estimate)

    def test_ci_covers_true_median_usually(self):
        covered = 0
        for seed in range(30):
            rng = np.random.default_rng(seed)
            values = rng.normal(5, 1, 80)
            ci = bootstrap_ci(values, rng=rng, n_resamples=400)
            covered += ci.contains(5.0)
        assert covered >= 24

    def test_ci_width_shrinks_with_n(self):
        rng = np.random.default_rng(0)
        small = bootstrap_ci(rng.normal(0, 1, 20), rng=np.random.default_rng(1))
        large = bootstrap_ci(rng.normal(0, 1, 2000), rng=np.random.default_rng(1))
        assert large.width < small.width

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], rng=rng)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], confidence=1.5, rng=rng)

    def test_paired_ci_for_correlation(self, rng):
        x = rng.normal(0, 1, 60)
        y = 0.9 * x + rng.normal(0, 0.2, 60)
        ci = bootstrap_paired_ci(x, y, lambda a, b: pearson(a, b), rng=rng)
        assert ci.low > 0.5  # strongly positive correlation

    def test_paired_validation(self, rng):
        with pytest.raises(ValueError):
            bootstrap_paired_ci([1.0, 2.0], [1.0], lambda a, b: 0.0, rng=rng)


class TestRegression:
    def test_nonnegative_lstsq_exact(self):
        A = np.array([[1.0, 0.0], [0.0, 2.0], [1.0, 1.0]])
        x_true = np.array([3.0, 4.0])
        x = nonnegative_lstsq(A, A @ x_true)
        assert np.allclose(x, x_true)

    def test_nonnegative_lstsq_clips_at_zero(self):
        A = np.array([[1.0], [1.0]])
        b = np.array([-1.0, -2.0])
        x = nonnegative_lstsq(A, b)
        assert x[0] == 0.0

    def test_nonnegative_lstsq_scale_invariance(self):
        A = np.array([[1e-12, 1.0], [2e-12, 0.5], [3e-12, 2.0]])
        x_true = np.array([5e11, 0.25])
        x = nonnegative_lstsq(A, A @ x_true)
        assert np.allclose(x, x_true, rtol=1e-6)

    def test_nonnegative_lstsq_validation(self):
        with pytest.raises(ValueError):
            nonnegative_lstsq(np.ones((3, 2)), np.ones(4))

    def test_fit_log_params_recovers_power_law(self, rng):
        x = np.logspace(0, 3, 40)
        true = np.array([2.5, 0.7])
        y = true[0] * x ** true[1]

        def residuals(theta):
            return np.log(theta[0] * x ** theta[1]) - np.log(y)

        result = fit_log_params(residuals, [1.0, 1.0], rng=rng)
        assert np.allclose(result.params, true, rtol=1e-6)
        assert result.rms_residual < 1e-8

    def test_fit_log_params_rejects_nonpositive_start(self, rng):
        with pytest.raises(ValueError):
            fit_log_params(lambda t: t, [0.0, 1.0], rng=rng)

    def test_fit_log_params_multistart_beats_bad_seed(self, rng):
        """A deliberately distant initial guess still converges thanks
        to the restarts."""
        x = np.logspace(0, 2, 30)
        y = 4.0 * x

        def residuals(theta):
            return np.log(theta[0] * x) - np.log(y)

        result = fit_log_params(
            residuals, [1e6], n_restarts=8, perturbation=2.0, rng=rng
        )
        assert result.params[0] == pytest.approx(4.0, rel=1e-6)


@given(
    st.lists(st.floats(min_value=-100, max_value=100), min_size=2, max_size=60),
    st.lists(st.floats(min_value=-100, max_value=100), min_size=2, max_size=60),
)
@settings(max_examples=80)
def test_ks_statistic_bounds(a, b):
    d = ks_statistic(a, b)
    assert 0.0 <= d <= 1.0


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=80))
@settings(max_examples=80)
def test_boxplot_ordering_invariants(values):
    stats = boxplot_stats(values)
    assert stats.minimum <= stats.q25 <= stats.median <= stats.q75 <= stats.maximum
    assert stats.minimum <= stats.mean <= stats.maximum
