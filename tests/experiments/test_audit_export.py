"""Tests for the paper audit and the CSV export."""

import csv
import io

import pytest

from repro.experiments.audit import AuditFinding, audit, render_audit
from repro.report.export import rows_to_csv, write_csv


class TestAudit:
    @pytest.fixture(scope="class")
    def findings(self):
        return audit()

    def test_documented_inconsistencies_found(self, findings):
        inconsistent = {
            (f.subject, f.check) for f in findings if not f.consistent
        }
        # The three divergences EXPERIMENTS.md documents.
        assert ("nuc-gpu", "Fig.5 peak Gflop/J vs Table I row") in inconsistent
        assert ("nuc-gpu", "fitted delta_pi vs ridge power") in inconsistent
        assert any(s == "xeon-phi" and "order of magnitude" in c
                   for s, c in inconsistent)

    def test_everything_else_consistent(self, findings):
        inconsistent = [f for f in findings if not f.consistent]
        assert len(inconsistent) == 3

    def test_fig1_count_derivation(self, findings):
        fig1 = next(f for f in findings if f.subject == "fig1")
        assert fig1.consistent
        assert "47" in fig1.derived

    def test_cap_limited_bandwidth_platforms(self, findings):
        subjects = {
            f.subject
            for f in findings
            if f.check == "sustained bandwidth is itself cap-limited"
        }
        assert subjects == {"nuc-cpu", "apu-cpu"}

    def test_render(self, findings):
        text = render_audit(findings)
        assert "INCONSISTENT" in text
        assert "14/17 consistent" in text


class TestCsvHelpers:
    def test_rows_to_csv_shapes(self):
        text = rows_to_csv(["a", "b"], [[1, 2], [3, None]])
        rows = list(csv.reader(io.StringIO(text)))
        assert rows == [["a", "b"], ["1", "2"], ["3", ""]]

    def test_write_csv_creates_parents(self, tmp_path):
        path = write_csv(tmp_path / "deep" / "file.csv", ["x"], [[1]])
        assert path.exists()
        assert path.read_text() == "x\n1\n"


class TestExportAll:
    @pytest.fixture(scope="class")
    def exported(self, tmp_path_factory):
        from repro.report.export import export_all

        outdir = tmp_path_factory.mktemp("artifacts")
        return outdir, export_all(outdir)

    def test_all_files_written(self, exported):
        outdir, paths = exported
        names = {p.name for p in paths}
        assert names == {
            "table1.csv", "fig1.csv", "fig4.csv", "fig5.csv",
            "fig6.csv", "fig7.csv", "claims.csv",
        }

    def test_table1_rows(self, exported):
        outdir, _ = exported
        rows = list(csv.DictReader((outdir / "table1.csv").open()))
        assert len(rows) == 12 * 10
        platforms = {r["platform"] for r in rows}
        assert len(platforms) == 12

    def test_claims_all_pass(self, exported):
        outdir, _ = exported
        rows = list(csv.DictReader((outdir / "claims.csv").open()))
        assert rows
        assert all(r["ok"] == "1" for r in rows)
        experiments = {r["experiment"] for r in rows}
        assert "vi" in experiments

    def test_fig5_has_all_platforms_and_regimes(self, exported):
        outdir, _ = exported
        rows = list(csv.DictReader((outdir / "fig5.csv").open()))
        platforms = {r["platform"] for r in rows}
        assert len(platforms) == 12
        regimes = {r["regime"] for r in rows}
        assert regimes <= {"0", "1", "2"}

    def test_fig7_cap_factors(self, exported):
        outdir, _ = exported
        rows = list(csv.DictReader((outdir / "fig7.csv").open()))
        factors = {float(r["cap_factor"]) for r in rows}
        assert factors == {1.0, 0.5, 0.25, 0.125}
