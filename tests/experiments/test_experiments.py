"""Tests for the experiment reproductions (shared full campaign pass)."""

import numpy as np
import pytest

from repro.experiments import (
    fig1,
    fig4,
    fig5,
    fig6,
    fig7,
    section_vb,
    section_vc,
    section_vd,
    section_vi,
    table1,
)
from repro.experiments.paper_reference import (
    FIG4_FLAGGED,
    FIG5_ANNOTATIONS,
    TABLE1,
)
from repro.experiments.registry import EXPERIMENTS, run_experiment


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self, all_fits):
        return table1.run(fits=all_fits)

    def test_all_claims_pass(self, result):
        failing = [c.name for c in result.claims if not c.ok]
        assert failing == []

    def test_covers_every_platform(self, result):
        for row in TABLE1.values():
            assert row.platform in result.body

    def test_deviation_structure(self, all_fits):
        devs = table1.parameter_deviations(all_fits)
        assert len(devs["eps_s_pj"]) == 12
        assert len(devs["eps_d_pj"]) == 9  # three platforms lack doubles
        assert len(devs["eps_rand_nj"]) == 11  # NUC GPU lacks it

    def test_text_renders(self, result):
        text = result.to_text()
        assert "table1" in text
        assert "PASS" in text


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self, all_fits):
        return fig4.run(fits=all_fits)

    def test_all_claims_pass(self, result):
        failing = [(c.name, c.ours) for c in result.claims if not c.ok]
        assert failing == []

    def test_capped_model_universally_no_worse(self, result):
        for pid, cmp in result.comparisons.items():
            improved = (
                abs(cmp.capped.median) <= abs(cmp.uncapped.median) + 1e-12
                or cmp.capped.stats.iqr <= cmp.uncapped.stats.iqr + 1e-12
            )
            assert improved, pid

    def test_overprediction_bias(self, result):
        positives = sum(
            cmp.uncapped.median > 0 for cmp in result.comparisons.values()
        )
        assert positives >= 10

    def test_flags_capture_most_paper_flags(self, result):
        assert len(result.flagged & FIG4_FLAGGED) >= 5

    def test_ordering_has_all_platforms(self, result):
        assert len(result.ordering) == 12


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        return fig1.run()

    def test_all_claims_pass(self, result):
        failing = [(c.name, c.ours) for c in result.claims if not c.ok]
        assert failing == []

    def test_headline_numbers(self, result):
        assert result.comparison.count == 47
        assert result.comparison.peak_ratio < 0.5
        assert 1.5 < result.comparison.bandwidth_ratio < 1.8


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5.run()

    def test_all_claims_pass(self, result):
        failing = [(c.name, c.ours) for c in result.claims if not c.ok]
        assert failing == []

    def test_annotations_match_paper(self, result):
        for pid, annotation in FIG5_ANNOTATIONS.items():
            if pid == "nuc-gpu":  # documented inconsistency in the paper
                continue
            panel = result.panels[pid]
            assert panel.peak_flops_per_joule / 1e9 == pytest.approx(
                annotation.peak_gflops_per_joule, rel=0.05
            ), pid

    def test_sustained_fractions_match_paper(self, result):
        for pid, annotation in FIG5_ANNOTATIONS.items():
            panel = result.panels[pid]
            assert panel.sustained_flops_fraction * 100 == pytest.approx(
                annotation.sustained_flops_pct, abs=2.0
            ), pid
            assert panel.sustained_bw_fraction * 100 == pytest.approx(
                annotation.sustained_bw_pct, abs=2.0
            ), pid

    def test_normalised_power_at_most_one(self, result):
        for pid, panel in result.panels.items():
            assert np.max(panel.normalised) <= 1.0 + 1e-9, pid


class TestFig6and7:
    def test_fig6_all_claims_pass(self):
        result = fig6.run()
        failing = [(c.name, c.ours) for c in result.claims if not c.ok]
        assert failing == []

    def test_fig7_all_claims_pass(self):
        result = fig7.run()
        failing = [(c.name, c.ours) for c in result.claims if not c.ok]
        assert failing == []

    def test_fig7_titan_anchor(self):
        result = fig7.run()
        assert result.perf_retention_low["gtx-titan"] == pytest.approx(
            0.312, abs=0.005
        )


class TestSections:
    def test_vb_all_claims_pass(self, all_fits):
        result = section_vb.run(fits=all_fits)
        failing = [(c.name, c.ours) for c in result.claims if not c.ok]
        assert failing == []

    def test_vc_all_claims_pass(self):
        result = section_vc.run()
        failing = [(c.name, c.ours) for c in result.claims if not c.ok]
        assert failing == []

    def test_vc_majority_count(self):
        fractions = section_vc.pi1_fractions()
        assert sum(f > 0.5 for f in fractions.values()) == 7

    def test_vc_correlation_negative(self):
        assert -1.0 < section_vc.efficiency_correlation() < -0.3

    def test_vd_all_claims_pass(self):
        result = section_vd.run()
        failing = [(c.name, c.ours) for c in result.claims if not c.ok]
        assert failing == []

    def test_vd_values(self):
        values = section_vd.bounded_comparison()
        assert values["arndale_count"] == 23
        assert values["titan_retention"] == pytest.approx(0.31, abs=0.01)
        assert values["speedup"] > 2.0

    def test_vi_all_claims_pass(self):
        result = section_vi.run()
        failing = [(c.name, c.ours) for c in result.claims if not c.ok]
        assert failing == []

    def test_vi_phi_premise_and_twist(self):
        """The marginal advantage is real; the effective-cost ranking
        drops the Phi out of the lead."""
        from repro.core import irregular
        from repro.machine.platforms import all_params

        spmv = irregular.spmv_workload(nnz=1e7, n_rows=1e6)
        ranking = irregular.rank_by_irregular_efficiency(all_params(), spmv)
        order = [pid for pid, _ in ranking]
        assert order.index("xeon-phi") > 1
        assert order[0] == "arndale-gpu"


class TestRegistry:
    def test_all_ids_registered(self):
        assert set(EXPERIMENTS) == {
            "table1", "fig1", "fig4", "fig5", "fig6", "fig7",
            "vb", "vc", "vd", "vi",
        }

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig9")

    def test_run_experiment_with_shared_fits(self, all_fits):
        result = run_experiment("vb", fits=all_fits)
        assert result.experiment_id == "vb"

    def test_cheap_experiments_run_without_campaigns(self):
        result = run_experiment("vd")
        assert result.pass_fraction == 1.0
