"""Tests for the fit-uncertainty quantification."""

import pytest

from repro.experiments.common import CampaignSettings
from repro.experiments.uncertainty import quantify


@pytest.fixture(scope="module")
def titan_uq():
    return quantify(
        "gtx-titan",
        n_seeds=3,
        settings=CampaignSettings(replicates=1, points_per_octave=2),
    )


class TestQuantify:
    def test_needs_multiple_seeds(self):
        with pytest.raises(ValueError):
            quantify("gtx-titan", n_seeds=1)

    def test_structure(self, titan_uq):
        assert titan_uq.n_seeds == 3
        assert set(titan_uq.spreads) == {
            "tau_flop", "tau_mem", "eps_flop", "eps_mem", "pi1", "delta_pi",
        }
        assert len(titan_uq.fits) == 3

    def test_seeds_produce_distinct_fits(self, titan_uq):
        pi1_values = titan_uq.spreads["pi1"].values
        assert len(set(pi1_values.tolist())) == 3

    def test_dispersion_is_small(self, titan_uq):
        """The pipeline pins every parameter within a few percent."""
        for name, spread in titan_uq.spreads.items():
            assert spread.cv < 0.10, name
            assert abs(spread.median_bias) < 0.10, name

    def test_anchor_bias_direction(self, titan_uq):
        """Time costs anchor to the best observed run, so their
        seed-median sits slightly *below* the truth -- the documented
        sustained-peak bias."""
        assert titan_uq.spreads["tau_flop"].median_bias < 0.01
        assert titan_uq.spreads["tau_mem"].median_bias < 0.01

    def test_table_renders(self, titan_uq):
        text = titan_uq.to_table().render()
        assert "Fit uncertainty" in text
        assert "delta_pi" in text

    def test_worst_cv(self, titan_uq):
        name, cv = titan_uq.worst_cv
        assert name in titan_uq.spreads
        assert cv == max(s.cv for s in titan_uq.spreads.values())
