"""Unit tests for the measurement layer (PowerMon, rails, interposer,
energy estimators)."""

import math

import numpy as np
import pytest

from repro.machine.platforms import platform
from repro.machine.power import PowerTrace
from repro.measurement.energy import (
    MeasurementRig,
    mean_power_energy,
    trapezoid_energy,
)
from repro.measurement.interposer import PCIeInterposer
from repro.measurement.powermon import PowerMon
from repro.measurement.rails import PCIE_SLOT_LIMIT, RailTopology, topology_for


@pytest.fixture
def mon():
    return PowerMon(resolution=0.0)


@pytest.fixture
def steady():
    return PowerTrace.constant(100.0, 1.0)


class TestPowerMon:
    def test_constant_trace_measured_exactly(self, mon, steady):
        m = mon.measure({"main": steady})
        assert m.average_power == pytest.approx(100.0)
        assert m.energy == pytest.approx(100.0)
        assert m.channel("main").n_samples == 1024

    def test_varying_trace_sampled_estimate(self, mon):
        trace = PowerTrace(np.array([0.0, 0.5, 1.0]), np.array([50.0, 150.0]))
        m = mon.measure({"main": trace})
        assert m.average_power == pytest.approx(100.0, rel=0.01)

    def test_quantisation(self, steady):
        mon = PowerMon(resolution=7.0)
        m = mon.measure({"main": steady})
        assert m.average_power == pytest.approx(98.0)  # 100 -> 14 * 7

    def test_aggregate_limit_reduces_rate(self):
        mon = PowerMon(sample_rate=1024, aggregate_limit=3072)
        assert mon.effective_rate(1) == 1024
        assert mon.effective_rate(3) == 1024
        assert mon.effective_rate(6) == 512

    def test_channel_count_limit(self):
        mon = PowerMon(max_channels=2)
        with pytest.raises(ValueError, match="channels"):
            mon.effective_rate(3)

    def test_short_run_still_one_sample(self, mon):
        trace = PowerTrace.constant(40.0, 1e-4)
        m = mon.measure({"main": trace})
        assert m.channel("main").n_samples == 1
        assert m.average_power == pytest.approx(40.0)

    def test_multi_rail_sum(self, mon, steady):
        m = mon.measure({"a": steady, "b": steady.scaled(0.5)})
        assert m.average_power == pytest.approx(150.0)

    def test_mismatched_durations_rejected(self, mon, steady):
        other = PowerTrace.constant(10.0, 2.0)
        with pytest.raises(ValueError, match="duration"):
            mon.measure({"a": steady, "b": other})

    def test_empty_rails_rejected(self, mon):
        with pytest.raises(ValueError, match="at least one"):
            mon.measure({})

    def test_unknown_channel_lookup(self, mon, steady):
        m = mon.measure({"main": steady})
        with pytest.raises(KeyError):
            m.channel("aux")

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerMon(sample_rate=0)
        with pytest.raises(ValueError):
            PowerMon(resolution=-1)

    def test_sampling_error_shrinks_with_rate(self):
        """Ablation mechanism: higher rates track varying traces better
        (on average -- a single trace can get lucky at any rate)."""
        errors = {64.0: [], 16384.0: []}
        for seed in range(20):
            rng = np.random.default_rng(seed)
            durations = np.full(200, 1.0 / 200)
            values = rng.uniform(50, 150, 200)
            trace = PowerTrace.from_durations(durations, values)
            for rate in errors:
                m = PowerMon(
                    sample_rate=rate, aggregate_limit=1e9, resolution=0.0
                )
                est = m.measure({"main": trace}).average_power
                errors[rate].append(abs(est - trace.average_power()))
        assert np.mean(errors[16384.0]) < np.mean(errors[64.0])


class TestRails:
    def test_split_sums_to_total(self):
        topo = RailTopology(
            name="t",
            rails=("a", "b"),
            fractions=(0.6, 0.4),
            limits=(math.inf, math.inf),
        )
        trace = PowerTrace(np.array([0.0, 1.0, 2.0]), np.array([100.0, 60.0]))
        rails = topo.split(trace)
        total = rails["a"].values + rails["b"].values
        assert np.allclose(total, trace.values)
        assert np.allclose(rails["a"].values, [60.0, 36.0])

    def test_limit_spills_to_other_rails(self):
        topo = RailTopology(
            name="t",
            rails=("slot", "aux"),
            fractions=(0.5, 0.5),
            limits=(75.0, math.inf),
        )
        trace = PowerTrace.constant(200.0, 1.0)
        rails = topo.split(trace)
        assert rails["slot"].values[0] == pytest.approx(75.0)
        assert rails["aux"].values[0] == pytest.approx(125.0)

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            RailTopology("t", ("a",), (0.9,), (math.inf,))

    def test_no_headroom_still_conserves_power(self):
        topo = RailTopology(
            name="t", rails=("a", "b"), fractions=(0.5, 0.5), limits=(10.0, 10.0)
        )
        trace = PowerTrace.constant(100.0, 1.0)
        rails = topo.split(trace)
        assert rails["a"].values[0] + rails["b"].values[0] == pytest.approx(100.0)

    def test_topology_selection(self):
        assert topology_for(platform("gtx-titan")).name == "discrete-gpu"
        assert topology_for(platform("xeon-phi")).name == "coprocessor"
        assert topology_for(platform("desktop-cpu")).name == "cpu-system"
        assert topology_for(platform("arndale-gpu")).name == "dc-brick"
        assert topology_for(platform("pandaboard-es")).name == "dc-brick"

    def test_gpu_topologies_respect_slot_limit(self):
        for pid in ("gtx-580", "gtx-680", "gtx-titan"):
            cfg = platform(pid)
            topo = topology_for(cfg)
            trace = PowerTrace.constant(cfg.max_model_power, 0.5)
            rails = topo.split(trace)
            assert rails["pcie_slot"].max_power() <= PCIE_SLOT_LIMIT + 1e-9


class TestInterposer:
    def test_within_budget(self):
        reading = PCIeInterposer().read(PowerTrace.constant(60.0, 1.0))
        assert reading.within_budget
        assert reading.peak_power == 60.0

    def test_over_budget_flagged(self):
        reading = PCIeInterposer().read(PowerTrace.constant(90.0, 1.0))
        assert not reading.within_budget

    def test_strict_mode_raises(self):
        with pytest.raises(ValueError, match="budget"):
            PCIeInterposer().read(PowerTrace.constant(90.0, 1.0), strict=True)


class TestEnergyEstimators:
    def test_mean_power_estimator(self, mon, steady):
        m = mon.measure({"main": steady})
        assert mean_power_energy(m) == pytest.approx(steady.energy())

    def test_trapezoid_close_to_exact_on_smooth_trace(self, mon):
        edges = np.linspace(0, 1, 101)
        values = 100 + 20 * np.sin(np.linspace(0, 3, 100))
        trace = PowerTrace(edges, values)
        m = mon.measure({"main": trace})
        assert trapezoid_energy(m) == pytest.approx(trace.energy(), rel=0.01)

    def test_rig_end_to_end(self):
        cfg = platform("gtx-titan")
        rig = MeasurementRig(cfg, powermon=PowerMon(resolution=0.0))
        trace = PowerTrace.constant(200.0, 0.5)
        run = rig.measure(trace)
        assert run.avg_power == pytest.approx(200.0, rel=1e-6)
        assert run.energy == pytest.approx(100.0, rel=1e-6)
        assert run.wall_time == pytest.approx(0.5)
        # Titan draws from three sources.
        assert len(run.measurement.channels) == 3

    def test_rig_quantisation_bias_small(self):
        cfg = platform("gtx-titan")
        rig = MeasurementRig(cfg)  # default 0.01 W resolution
        trace = PowerTrace.constant(123.456, 0.5)
        run = rig.measure(trace)
        assert run.avg_power == pytest.approx(123.456, abs=0.05)
