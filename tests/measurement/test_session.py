"""Tests for session recording and window detection."""

import numpy as np
import pytest

from repro.faults import FaultInjector, FaultPlan, TruncatedSessionError
from repro.machine.engine import Engine
from repro.machine.kernel import DRAM, KernelSpec
from repro.machine.platforms import platform
from repro.machine.power import PowerTrace
from repro.measurement.powermon import PowerMon
from repro.measurement.session import Window, detect_windows, measure_session


def synthetic_session(
    idle: float = 10.0, active: float = 100.0
) -> tuple[np.ndarray, np.ndarray]:
    """1 kHz samples: idle [0, 0.1), active [0.1, 0.3), idle, active
    [0.5, 0.6), idle to 0.8."""
    times = np.arange(0, 0.8, 1e-3)
    power = np.full_like(times, idle)
    power[(times >= 0.1) & (times < 0.3)] = active
    power[(times >= 0.5) & (times < 0.6)] = active
    return times, power


class TestWindow:
    def test_validation(self):
        with pytest.raises(ValueError):
            Window(1.0, 1.0)

    def test_overlap(self):
        a = Window(0.0, 1.0)
        assert a.overlap(Window(0.5, 2.0)) == pytest.approx(0.5)
        assert a.overlap(Window(2.0, 3.0)) == 0.0


class TestDetectWindows:
    def test_finds_both_runs(self):
        times, power = synthetic_session()
        windows = detect_windows(times, power)
        assert len(windows) == 2
        assert windows[0].start == pytest.approx(0.1, abs=0.005)
        assert windows[0].end == pytest.approx(0.3, abs=0.005)
        assert windows[1].start == pytest.approx(0.5, abs=0.005)

    def test_all_idle_returns_nothing(self):
        times = np.arange(0, 0.5, 1e-3)
        power = np.full_like(times, 10.0)
        assert detect_windows(times, power) == []

    def test_noise_robustness(self, rng):
        times, power = synthetic_session()
        noisy = power * rng.normal(1.0, 0.03, len(power))
        windows = detect_windows(times, noisy)
        assert len(windows) == 2

    def test_merge_gap_joins_oscillation(self):
        """A short dip (governor oscillation) must not split a run."""
        times = np.arange(0, 0.4, 1e-3)
        power = np.full_like(times, 10.0)
        power[(times >= 0.1) & (times < 0.3)] = 100.0
        power[(times >= 0.19) & (times < 0.20)] = 12.0  # 10 ms dip
        windows = detect_windows(times, power, merge_gap=0.02)
        assert len(windows) == 1

    def test_min_duration_filters_glitches(self):
        times = np.arange(0, 0.4, 1e-3)
        power = np.full_like(times, 10.0)
        power[(times >= 0.1) & (times < 0.102)] = 100.0  # 2 ms spike
        assert detect_windows(times, power, min_duration=0.01) == []

    def test_explicit_threshold(self):
        times, power = synthetic_session(idle=10.0, active=100.0)
        windows = detect_windows(times, power, threshold=95.0)
        assert len(windows) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            detect_windows(np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            detect_windows(np.array([]), np.array([]))


class TestSessionEndToEnd:
    @pytest.fixture(scope="class")
    def session(self):
        cfg = platform("gtx-titan")
        engine = Engine(cfg, rng=np.random.default_rng(1))
        kernels = [
            KernelSpec(
                name=f"k{i}", flops=(2.0 ** i) * 1e9, traffic={DRAM: 1e9}
            ).scaled(50)
            for i in range(3)
        ]
        return engine.run_session(kernels, idle_gap=0.08)

    def test_session_structure(self, session):
        assert session.n_runs == 3
        # Session duration = runs + 4 idle gaps.
        run_time = sum(r.wall_time for r in session.results)
        assert session.trace.duration == pytest.approx(
            run_time + 4 * 0.08, rel=1e-6
        )

    def test_true_windows_align_with_runs(self, session):
        for (start, end), result in zip(session.windows, session.results):
            assert end - start == pytest.approx(result.wall_time, rel=1e-9)

    def test_detection_recovers_true_windows(self, session):
        measured = measure_session(session.trace)
        assert measured.n_runs == session.n_runs
        for reading, (start, end) in zip(measured.windows, session.windows):
            truth = Window(start, end)
            overlap = reading.window.overlap(truth)
            assert overlap / truth.duration > 0.97

    def test_windowed_energy_matches_run_energy(self, session):
        measured = measure_session(
            session.trace, powermon=PowerMon(resolution=0.0)
        )
        for reading, result in zip(measured.windows, session.results):
            assert reading.energy == pytest.approx(
                result.true_energy, rel=0.03
            )

    def test_idle_estimate(self, session):
        measured = measure_session(session.trace)
        assert measured.idle_power == pytest.approx(
            platform("gtx-titan").idle_power, rel=0.05
        )

    def test_session_validation(self):
        engine = Engine(platform("gtx-titan"))
        with pytest.raises(ValueError):
            engine.run_session([])
        with pytest.raises(ValueError):
            engine.run_session(
                [KernelSpec(name="k", flops=1e9)], idle_gap=0.0
            )


TRUE_WINDOWS = [Window(0.1, 0.3), Window(0.5, 0.6)]


def assert_recall(windows, min_overlap=0.9):
    """Both true runs are found, each covered to at least min_overlap."""
    assert len(windows) == len(TRUE_WINDOWS)
    for found, truth in zip(windows, TRUE_WINDOWS):
        assert found.overlap(truth) / truth.duration >= min_overlap


class TestDetectionRobustness:
    """Bounded recall loss under injected rig faults."""

    def test_recall_under_dropout(self):
        times, power = synthetic_session()
        injector = FaultInjector(FaultPlan(seed=3, sample_dropout=0.05))
        assert_recall(detect_windows(*injector.corrupt_channel(
            "session", times, power
        )))

    def test_recall_under_jitter(self):
        times, power = synthetic_session()
        injector = FaultInjector(FaultPlan(seed=4, timestamp_jitter=1e-3))
        assert_recall(detect_windows(*injector.corrupt_channel(
            "session", times, power
        )))

    def test_recall_under_combined_faults(self):
        times, power = synthetic_session()
        injector = FaultInjector(
            FaultPlan(
                seed=5,
                sample_dropout=0.05,
                timestamp_jitter=5e-4,
                nan_rate=0.01,
            )
        )
        assert_recall(detect_windows(*injector.corrupt_channel(
            "session", times, power
        )))

    def test_nan_samples_do_not_poison_the_threshold(self):
        times, power = synthetic_session()
        power = power.copy()
        power[::37] = np.nan
        assert_recall(detect_windows(times, power))

    def test_all_nan_signal_is_an_error(self):
        times, _ = synthetic_session()
        with pytest.raises(ValueError, match="no finite samples"):
            detect_windows(times, np.full_like(times, np.nan))


class TestTruncatedSessions:
    @staticmethod
    def truncated_session():
        """Like synthetic_session, but the recording stops mid-run:
        the second run is still active at the final sample."""
        times = np.arange(0, 0.55, 1e-3)
        power = np.full_like(times, 10.0)
        power[(times >= 0.1) & (times < 0.3)] = 100.0
        power[times >= 0.5] = 100.0
        return times, power

    def test_truncated_end_raises_named_error(self):
        times, power = self.truncated_session()
        with pytest.raises(TruncatedSessionError) as err:
            detect_windows(times, power)
        assert err.value.edge == "end"
        assert isinstance(err.value, ValueError)  # backward compatible.

    def test_truncated_start_raises_named_error(self):
        times, power = self.truncated_session()
        with pytest.raises(TruncatedSessionError) as err:
            detect_windows(times, power[::-1])
        assert err.value.edge == "start"

    def test_allow_truncated_drops_only_the_partial_window(self):
        times, power = self.truncated_session()
        windows = detect_windows(times, power, allow_truncated=True)
        assert len(windows) == 1  # the complete [0.1, 0.3) run survives.
        assert windows[0].overlap(Window(0.1, 0.3)) / 0.2 >= 0.9

    def test_all_active_truncated_signal_yields_nothing(self):
        times = np.arange(0, 0.2, 1e-3)
        power = np.full_like(times, 100.0)
        windows = detect_windows(
            times, power, threshold=50.0, allow_truncated=True
        )
        assert windows == []

    def test_measure_session_strict_by_default(self):
        """Truncation surfaces as the named error unless the caller
        explicitly opts into partial sessions."""
        cfg = platform("gtx-titan")
        engine = Engine(cfg, rng=np.random.default_rng(2))
        kernels = [
            KernelSpec(
                name=f"k{i}", flops=2e9, traffic={DRAM: 1e9}
            ).scaled(50)
            for i in range(3)
        ]
        session = engine.run_session(kernels, idle_gap=0.08)
        plan = FaultPlan(
            seed=1, truncation_rate=1.0, truncation_fraction=0.5
        )
        with pytest.raises(TruncatedSessionError):
            measure_session(session.trace, faults=plan)
        assert measure_session(
            session.trace, faults=plan, allow_truncated=True
        ).truncated

    def test_measure_session_rejects_typoed_kwarg(self):
        """allow_truncated is an explicit parameter: a misspelling
        must fail loudly instead of silently re-enabling strictness."""
        cfg = platform("gtx-titan")
        engine = Engine(cfg, rng=np.random.default_rng(2))
        kernels = [KernelSpec(name="k", flops=2e9, traffic={DRAM: 1e9})]
        session = engine.run_session(kernels, idle_gap=0.08)
        with pytest.raises(TypeError):
            measure_session(session.trace, allow_truncatd=True)

    def test_measure_session_truncation_fault_sets_flag(self):
        cfg = platform("gtx-titan")
        engine = Engine(cfg, rng=np.random.default_rng(2))
        kernels = [
            KernelSpec(
                name=f"k{i}", flops=2e9, traffic={DRAM: 1e9}
            ).scaled(50)
            for i in range(3)
        ]
        session = engine.run_session(kernels, idle_gap=0.08)
        clean = measure_session(session.trace)
        cut = measure_session(
            session.trace,
            faults=FaultPlan(
                seed=1, truncation_rate=1.0, truncation_fraction=0.5
            ),
            allow_truncated=True,
        )
        assert cut.truncated
        assert not clean.truncated
        assert cut.total_duration == pytest.approx(
            clean.total_duration * 0.5
        )
        assert cut.n_runs < clean.n_runs


class TestCorruptWindows:
    def test_fully_nan_window_is_dropped_and_counted(self, monkeypatch):
        import repro.measurement.session as session_module

        # Two runs; the second one's samples all read NaN (dead ADC).
        trace = PowerTrace(
            np.array([0.0, 0.1, 0.3, 0.5, 0.6, 0.7]),
            np.array([10.0, 100.0, 10.0, np.nan, 10.0]),
        )
        # Threshold detection never flags NaN samples as active, so
        # force both windows through -- as a desynced second channel or
        # a future summed-rail detection path might.
        monkeypatch.setattr(
            session_module,
            "detect_windows",
            lambda *args, **kwargs: [Window(0.1, 0.3), Window(0.5, 0.6)],
        )
        measured = measure_session(trace)
        assert measured.n_runs == 1
        assert measured.dropped_windows == 1
        assert np.isfinite(measured.windows[0].avg_power)
        assert np.isfinite(measured.windows[0].energy)
