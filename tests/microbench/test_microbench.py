"""Unit tests for the microbenchmark layer."""

import math

import numpy as np
import pytest

from repro.machine.kernel import DRAM
from repro.machine.platforms import platform
from repro.microbench.cachebench import cache_sweep, working_set_staircase
from repro.microbench.intensity import (
    balanced_intensities,
    default_intensities,
    intensity_sweep,
)
from repro.microbench.kernels import (
    cache_kernel,
    chase_kernel,
    intensity_kernel,
    peak_flops_kernel,
    stream_kernel,
)
from repro.microbench.peak import (
    peak_flops,
    peak_stream,
    sustained_bandwidth,
    sustained_flops,
)
from repro.microbench.pointer_chase import chase_sweep, dram_miss_fraction
from repro.microbench.runner import BenchmarkRunner


@pytest.fixture(scope="module")
def titan_runner():
    return BenchmarkRunner(platform("gtx-titan"), seed=0, target_duration=0.1)


@pytest.fixture(scope="module")
def clean_runner():
    """Noise-free runner on the desktop CPU."""
    return BenchmarkRunner(platform("desktop-cpu"), seed=None, target_duration=0.1)


class TestKernelBuilders:
    def test_intensity_kernel(self):
        cfg = platform("gtx-titan")
        k = intensity_kernel(cfg, 4.0)
        assert k.intensity == pytest.approx(4.0)
        assert k.dram_bytes > 0
        assert k.working_set >= 8 * cfg.largest_cache_capacity

    def test_intensity_kernel_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            intensity_kernel(platform("gtx-titan"), 0.0)

    def test_cache_kernel_pins_level(self):
        cfg = platform("desktop-cpu")
        k = cache_kernel(cfg, "L1")
        assert k.traffic == {"L1": pytest.approx(1e6)}
        assert k.working_set <= cfg.truth.cache_level("L1").capacity

    def test_cache_kernel_unknown_level(self):
        with pytest.raises(KeyError):
            cache_kernel(platform("desktop-cpu"), "L9")

    def test_cache_kernel_platform_without_level(self):
        with pytest.raises(KeyError):
            cache_kernel(platform("nuc-gpu"), "L1")

    def test_chase_kernel(self):
        k = chase_kernel(platform("xeon-phi"))
        assert k.random_accesses > 0
        assert k.pattern == "random"

    def test_chase_kernel_requires_random_params(self):
        with pytest.raises(ValueError, match="random-access"):
            chase_kernel(platform("nuc-gpu"))

    def test_peak_kernels(self):
        cfg = platform("gtx-titan")
        pk = peak_flops_kernel(cfg, precision="double")
        assert pk.flops > 0 and pk.total_bytes == 0
        sk = stream_kernel(cfg)
        assert sk.flops == 0 and sk.dram_bytes > 0


class TestRunnerCalibration:
    def test_calibration_hits_target(self, clean_runner):
        k = intensity_kernel(clean_runner.config, 2.0)
        obs = clean_runner.execute(k, "intensity")
        assert obs.wall_time == pytest.approx(0.1, rel=0.05)

    def test_calibration_preserves_intensity(self, clean_runner):
        k = intensity_kernel(clean_runner.config, 8.0)
        calibrated = clean_runner.calibrate(k)
        assert calibrated.intensity == pytest.approx(8.0)

    def test_replicates_distinct_under_noise(self, titan_runner):
        k = intensity_kernel(titan_runner.config, 1.0)
        obs = titan_runner.execute_replicates(k, "intensity", 3)
        times = {o.wall_time for o in obs}
        assert len(times) == 3

    def test_replicate_count_validated(self, titan_runner):
        k = intensity_kernel(titan_runner.config, 1.0)
        with pytest.raises(ValueError):
            titan_runner.execute_replicates(k, "intensity", 0)

    def test_observation_accessors(self, clean_runner):
        k = intensity_kernel(clean_runner.config, 2.0)
        obs = clean_runner.execute(k, "intensity")
        assert obs.performance == pytest.approx(obs.flops / obs.wall_time)
        assert obs.intensity == pytest.approx(2.0)
        assert obs.flops_per_joule > 0
        assert obs.energy_per_byte > 0

    def test_measured_close_to_model_when_clean(self, clean_runner):
        from repro.core import model

        truth = clean_runner.config.truth
        k = intensity_kernel(clean_runner.config, 1.0)
        obs = clean_runner.execute(k, "intensity")
        expected_t = float(model.time(truth, obs.flops, obs.dram_bytes))
        expected_e = float(model.energy(truth, obs.flops, obs.dram_bytes))
        assert obs.wall_time == pytest.approx(expected_t, rel=0.06)
        assert obs.energy == pytest.approx(expected_e, rel=0.06)


class TestIntensitySweep:
    def test_grids(self):
        grid = default_intensities()
        assert grid[0] == pytest.approx(0.125)
        assert grid[-1] == pytest.approx(128.0)
        balanced = balanced_intensities(platform("gtx-titan"))
        b_tau = platform("gtx-titan").truth.time_balance
        assert balanced[0] == pytest.approx(b_tau / 32)
        assert balanced[-1] == pytest.approx(b_tau * 8)

    def test_sweep_counts(self, titan_runner):
        obs = intensity_sweep(titan_runner, [1.0, 2.0, 4.0], replicates=2)
        assert len(obs) == 6
        assert {o.benchmark for o in obs} == {"intensity"}

    def test_double_precision_sweep(self, titan_runner):
        obs = intensity_sweep(
            titan_runner, [1.0], replicates=1, precision="double"
        )
        assert obs[0].kernel.precision == "double"

    def test_double_rejected_without_support(self):
        runner = BenchmarkRunner(platform("arndale-gpu"), seed=0)
        with pytest.raises(ValueError, match="double"):
            intensity_sweep(runner, [1.0], precision="double")

    def test_empty_grid_rejected(self, titan_runner):
        with pytest.raises(ValueError):
            intensity_sweep(titan_runner, [])


class TestCacheBench:
    def test_sweep_covers_modelled_levels(self):
        runner = BenchmarkRunner(platform("desktop-cpu"), seed=0, target_duration=0.05)
        results = cache_sweep(runner, replicates=1)
        assert set(results) == {"L1", "L2"}
        for level, obs in results.items():
            assert all(o.benchmark == f"cache:{level}" for o in obs)

    def test_measured_bandwidth_near_level_truth(self):
        runner = BenchmarkRunner(platform("desktop-cpu"), seed=None, target_duration=0.05)
        results = cache_sweep(runner, replicates=1)
        l1 = platform("desktop-cpu").truth.cache_level("L1")
        measured = results["L1"][0].bandwidth
        assert measured == pytest.approx(l1.bandwidth, rel=0.1)

    def test_staircase_transitions(self):
        cfg = platform("desktop-cpu")
        stairs = working_set_staircase(cfg)
        by_size = dict((size, level) for size, level, _ in stairs)
        sizes = sorted(by_size)
        assert by_size[sizes[0]] == "L1"  # well under 32 KiB
        assert by_size[sizes[-1]] == "dram"  # far beyond L2

    def test_staircase_requires_capacities(self):
        with pytest.raises(ValueError):
            working_set_staircase(platform("nuc-gpu"))


class TestPointerChase:
    def test_chase_sweep(self):
        runner = BenchmarkRunner(platform("xeon-phi"), seed=0, target_duration=0.05)
        obs = chase_sweep(runner, replicates=2)
        assert len(obs) == 2
        assert all(o.access_rate > 0 for o in obs)

    def test_measured_rate_near_truth(self):
        runner = BenchmarkRunner(platform("xeon-phi"), seed=None, target_duration=0.05)
        obs = chase_sweep(runner, replicates=1)[0]
        assert obs.access_rate == pytest.approx(
            platform("xeon-phi").truth.random.rate, rel=0.05
        )

    @pytest.mark.parametrize("pid", ["desktop-cpu", "gtx-titan", "arndale-cpu"])
    def test_dram_miss_fraction_near_one(self, pid):
        fraction = dram_miss_fraction(platform(pid), n_accesses=5000)
        assert fraction > 0.95

    def test_platform_without_capacities_trivially_misses(self):
        assert dram_miss_fraction(platform("nuc-gpu")) == 1.0


class TestPeaks:
    def test_sustained_flops_close_to_truth(self):
        runner = BenchmarkRunner(platform("gtx-680"), seed=1, target_duration=0.05)
        obs = peak_flops(runner, replicates=3)
        truth = platform("gtx-680").truth.peak_flops
        assert sustained_flops(obs) == pytest.approx(truth, rel=0.05)

    def test_sustained_bandwidth_close_to_truth(self):
        runner = BenchmarkRunner(platform("gtx-680"), seed=1, target_duration=0.05)
        obs = peak_stream(runner, replicates=3)
        truth = platform("gtx-680").truth.peak_bandwidth
        assert sustained_bandwidth(obs) == pytest.approx(truth, rel=0.05)

    def test_empty_observations_rejected(self):
        with pytest.raises(ValueError):
            sustained_flops([])
        with pytest.raises(ValueError):
            sustained_bandwidth([])

    def test_cap_limited_stream_bandwidth(self):
        """On the APU CPU the cap binds during pure streaming: the
        sustained bandwidth lands at delta_pi / eps_mem, below the raw
        tau_mem peak -- the effect behind Table I's 31% figure."""
        cfg = platform("apu-cpu")
        runner = BenchmarkRunner(cfg, seed=None, target_duration=0.05)
        obs = peak_stream(runner, replicates=1)
        truth = cfg.truth
        cap_limit = truth.delta_pi / truth.eps_mem
        assert cap_limit < truth.peak_bandwidth
        assert sustained_bandwidth(obs) == pytest.approx(cap_limit, rel=0.06)
