"""Parallel campaign runner: seeding, pooling, counters, messages.

The campaign runner's one hard promise is worker-count independence:
the same parent seed must produce the same Observations and fits
whether the shards run inline or across a process pool.  These tests
use scaled-down campaigns on a platform subset so the pool smoke test
stays tier-1 cheap.
"""

import time

import numpy as np
import pytest

from repro.machine.kernel import DRAM, KernelSpec
from repro.machine.platforms import platform
from repro.microbench.campaign import (
    CampaignRunner,
    ShardReport,
    ShardSpec,
    run_shard,
    shard_seeds,
)
from repro.microbench.runner import BenchmarkRunner, Observation

QUICK = dict(
    replicates=1,
    points_per_octave=2,
    target_duration=0.1,
    include_double=False,
    include_cache=False,
    include_chase=False,
)


def quick_runner(platform_ids, seed=2014, max_workers=1):
    return CampaignRunner(
        platform_ids, seed=seed, max_workers=max_workers, **QUICK
    )


# Module-level shard_fn seams (process pools must pickle them).

def _shard_stub(spec, wall):
    return None, ShardReport(
        platform_id=spec.platform_id,
        seed=spec.seed,
        n_runs=1,
        calibration_hits=0,
        calibration_misses=0,
        wall_seconds=wall,
    )


def _sleepy_shard(spec):
    started = time.perf_counter()
    time.sleep(0.2)
    return _shard_stub(spec, time.perf_counter() - started)


def _failing_shard(spec):
    time.sleep(0.05)
    raise RuntimeError("boom")


def _hanging_shard(spec):
    time.sleep(30.0)
    return _shard_stub(spec, 30.0)


class TestShardSeeds:
    def test_deterministic_and_distinct(self):
        a = shard_seeds(2014, 4)
        assert a == shard_seeds(2014, 4)
        assert len(set(a)) == 4

    def test_prefix_stable(self):
        """Shard k's seed depends only on (parent, k) -- adding more
        platforms never reshuffles the existing ones."""
        assert shard_seeds(7, 3) == shard_seeds(7, 6)[:3]

    def test_parent_seed_matters(self):
        assert shard_seeds(1, 3) != shard_seeds(2, 3)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            shard_seeds(0, -1)


class TestRunShard:
    def test_reports_counters(self):
        spec = ShardSpec(platform_id="gtx-titan", seed=99, **QUICK)
        fitted, report = run_shard(spec)
        assert fitted.config.name == platform("gtx-titan").name
        assert report.platform_id == "gtx-titan"
        assert report.seed == 99
        assert report.n_runs == fitted.campaign.n_runs > 0
        assert report.calibration_misses > 0
        # Replicated peak runs re-use the primed/warm cache.
        assert report.calibration_hits > 0
        assert 0.0 < report.calibration_hit_rate < 1.0
        assert report.wall_seconds > 0.0


class TestCampaignRunner:
    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="at least one"):
            CampaignRunner(())
        with pytest.raises(ValueError, match="unknown platform"):
            CampaignRunner(("gtx-titan", "not-a-platform"))
        with pytest.raises(ValueError, match="max_workers"):
            CampaignRunner(("gtx-titan",), max_workers=0)
        with pytest.raises(ValueError, match="duplicate"):
            CampaignRunner(("gtx-titan", "gtx-titan"))

    def test_worker_count_does_not_change_results(self):
        """The acceptance property: 1 worker and a 2-worker pool
        produce identical Observations and identical fits."""
        ids = ("gtx-titan", "nuc-gpu")
        seq = quick_runner(ids, max_workers=1)
        par = quick_runner(ids, max_workers=2)
        fits_seq = seq.run()
        fits_par = par.run()
        assert set(fits_seq) == set(fits_par) == set(ids)
        for pid in ids:
            obs_seq = fits_seq[pid].campaign.all_observations
            obs_par = fits_par[pid].campaign.all_observations
            assert obs_seq == obs_par  # frozen dataclasses: exact match
            assert (
                fits_seq[pid].capped.params.tau_flop
                == fits_par[pid].capped.params.tau_flop
            )
            assert (
                fits_seq[pid].capped.params.pi1
                == fits_par[pid].capped.params.pi1
            )

    def test_pool_smoke_run_with_report(self):
        """Tiny 2-worker process-pool campaign end to end."""
        runner = quick_runner(("gtx-titan", "xeon-phi"), max_workers=2)
        seen: list[ShardReport] = []
        fits = runner.run(progress=seen.append)
        assert set(fits) == {"gtx-titan", "xeon-phi"}
        assert sorted(r.platform_id for r in seen) == [
            "gtx-titan", "xeon-phi",
        ]
        report = runner.report
        assert report is not None
        assert report.workers == 2
        assert report.n_runs == sum(r.n_runs for r in seen)
        assert report.shard_seconds > 0.0
        assert report.parallel_efficiency > 0.0
        # report.shards is in platform order even if completion wasn't.
        assert [s.platform_id for s in report.shards] == [
            "gtx-titan", "xeon-phi",
        ]

    def test_shard_specs_carry_spawned_seeds(self):
        runner = quick_runner(("gtx-titan", "xeon-phi", "nuc-gpu"))
        specs = runner.shard_specs()
        assert [s.platform_id for s in specs] == [
            "gtx-titan", "xeon-phi", "nuc-gpu",
        ]
        assert [s.seed for s in specs] == shard_seeds(2014, 3)


class TestPoolAccounting:
    """The report's parallel accounting: actual pool width, burned
    time on failed/timed-out shards, efficiency bounds."""

    def test_workers_is_actual_pool_width_not_request(self):
        """max_workers > len(platforms): the pool is capped at the
        shard count and the report must say so, or
        parallel_efficiency is understated by workers/len(specs)."""
        runner = CampaignRunner(
            ("gtx-titan", "nuc-gpu"), max_workers=8,
            shard_fn=_sleepy_shard, **QUICK,
        )
        runner.run()
        report = runner.report
        assert report.workers == 2
        # Two 0.2s shards on two workers: efficiency is bounded by 1
        # (pool startup keeps it below), not scaled down by the
        # requested-but-idle 6 extra workers.
        assert 0.0 < report.parallel_efficiency <= 1.0

    def test_inline_run_reports_one_worker(self):
        runner = CampaignRunner(
            ("gtx-titan", "nuc-gpu"), max_workers=1,
            shard_fn=lambda spec: _shard_stub(spec, 0.01), **QUICK,
        )
        runner.run()
        assert runner.report.workers == 1

    def test_single_shard_runs_inline_regardless_of_request(self):
        runner = CampaignRunner(
            ("gtx-titan",), max_workers=4,
            shard_fn=lambda spec: _shard_stub(spec, 0.01), **QUICK,
        )
        runner.run()
        assert runner.report.workers == 1

    def test_failed_pool_shards_report_burned_time(self):
        runner = CampaignRunner(
            ("gtx-titan", "nuc-gpu"), max_workers=2,
            shard_fn=_failing_shard, **QUICK,
        )
        fits = runner.run()
        report = runner.report
        assert fits == {}
        assert not report.ok
        for shard in report.shards:
            assert shard.status == "failed"
            assert "boom" in shard.error
            # Each shard slept 0.05s before raising; that time burned.
            assert shard.wall_seconds > 0.0
        assert report.shard_seconds > 0.0

    def test_timeout_shards_report_elapsed_not_nominal(self):
        runner = CampaignRunner(
            ("gtx-titan", "nuc-gpu"), max_workers=2,
            shard_fn=_hanging_shard, shard_timeout=0.4, **QUICK,
        )
        fits = runner.run()
        report = runner.report
        assert fits == {}
        for shard in report.shards:
            assert shard.status == "timeout"
            # Elapsed at the deadline: at least the timeout actually
            # waited out, nowhere near the 30s the shard would take.
            assert 0.4 <= shard.wall_seconds < 20.0
        assert report.shard_seconds > 0.0

    def test_cancelled_queued_shards_charged_zero(self):
        """Regression: a shard still *queued* at the deadline (pool
        narrower than the shard count, every worker hung) used to be
        charged the elapsed wall time even though it never ran,
        inflating shard_seconds with work nobody performed."""
        # Six shards on a two-wide pool: the executor runs two and
        # prefetches a few more into its call queue (those count as
        # started and cannot cancel); the deepest-queued shards never
        # leave the work queue and must cancel cleanly.
        runner = CampaignRunner(
            ("gtx-titan", "nuc-gpu", "xeon-phi", "arndale-gpu",
             "apu-gpu", "gtx-580"),
            max_workers=2,
            shard_fn=_hanging_shard, shard_timeout=0.4, **QUICK,
        )
        fits = runner.run()
        report = runner.report
        assert fits == {}
        assert all(s.status == "timeout" for s in report.shards)
        never_ran = [s for s in report.shards if "not started" in s.error]
        abandoned = [s for s in report.shards if "unfinished" in s.error]
        assert len(never_ran) >= 1
        assert len(never_ran) + len(abandoned) == 6
        for shard in never_ran:
            assert shard.wall_seconds == 0.0
        # Shards the pool actually picked up burned real time.
        assert any(s.wall_seconds >= 0.4 for s in abandoned)
        # shard_seconds counts only time shards actually burned.
        assert report.shard_seconds == pytest.approx(
            sum(s.wall_seconds for s in abandoned)
        )


class TestProgressIsolation:
    """A user progress callback that raises must not kill the
    campaign, abandon pool workers, or leave report unset."""

    @staticmethod
    def _boom(shard_report):
        raise ValueError("observer crashed")

    def test_inline_progress_exception_recorded(self):
        runner = quick_runner(("gtx-titan",))
        fits = runner.run(progress=self._boom)
        assert set(fits) == {"gtx-titan"}
        assert runner.report is not None
        assert runner.report.ok
        (err,) = runner.progress_errors
        assert "gtx-titan" in err and "observer crashed" in err

    def test_pool_progress_exception_recorded(self):
        runner = CampaignRunner(
            ("gtx-titan", "nuc-gpu"), max_workers=2,
            shard_fn=_sleepy_shard, **QUICK,
        )
        runner.run(progress=self._boom)
        assert runner.report is not None
        assert len(runner.progress_errors) == 2
        assert len(runner.report.shards) == 2

    def test_progress_errors_reset_between_runs(self):
        runner = quick_runner(("gtx-titan",))
        runner.run(progress=self._boom)
        assert runner.progress_errors
        runner.run()
        assert runner.progress_errors == ()


class TestCalibrationMemoisation:
    def test_replicates_hit_the_cache(self):
        runner = BenchmarkRunner(platform("gtx-titan"), seed=0)
        k = KernelSpec(name="k", flops=1e9, traffic={DRAM: 1e8})
        runner.execute_replicates(k, "intensity", 3)
        assert runner.calibration_misses == 1
        assert runner.calibration_hits == 2

    def test_prime_matches_scalar_calibration(self):
        config = platform("gtx-titan")
        kernels = [
            KernelSpec(name=f"k{i}", flops=float(x) * 1e8, traffic={DRAM: 1e8})
            for i, x in enumerate(np.geomspace(0.25, 64.0, 8))
        ]
        primed = BenchmarkRunner(config, seed=0)
        assert primed.prime_calibration(kernels) == len(kernels)
        assert primed.prime_calibration(kernels) == 0  # all cached now
        cold = BenchmarkRunner(config, seed=0)
        for kernel in kernels:
            assert primed.calibrate(kernel) == cold.calibrate(kernel)
        # Every post-prime calibrate was a hit.
        assert primed.calibration_hits == len(kernels)

    def test_prime_deduplicates_shapes(self):
        runner = BenchmarkRunner(platform("gtx-titan"), seed=0)
        k = KernelSpec(name="k", flops=1e9, traffic={DRAM: 1e8})
        clone = KernelSpec(name="other-name", flops=1e9, traffic={DRAM: 1e8})
        assert runner.prime_calibration([k, clone, k]) == 1


class TestObservationValidation:
    def test_error_names_the_run(self):
        k = KernelSpec(name="probe-17", flops=1.0)
        with pytest.raises(ValueError) as err:
            Observation(
                platform="GTX Titan",
                benchmark="intensity",
                kernel=k,
                wall_time=0.0,
                energy=1.0,
                avg_power=1.0,
                throttled=False,
            )
        msg = str(err.value)
        assert "probe-17" in msg
        assert "GTX Titan" in msg
        assert "intensity" in msg
        assert "wall_time" in msg

    def test_energy_error_names_the_run_too(self):
        k = KernelSpec(name="probe-18", flops=1.0)
        with pytest.raises(ValueError, match="probe-18"):
            Observation(
                platform="GTX Titan",
                benchmark="peak",
                kernel=k,
                wall_time=1.0,
                energy=-2.0,
                avg_power=1.0,
                throttled=False,
            )
