"""Integration tests: full campaigns and parameter recovery."""

import numpy as np
import pytest

from repro.core.fitting import fit_cache_level, fit_random_access
from repro.machine.platforms import platform
from repro.microbench.suite import (
    fit_campaign,
    run_campaign,
    to_fit_observations,
)


@pytest.fixture(scope="module")
def titan_campaign():
    return run_campaign(platform("gtx-titan"), seed=3, replicates=2)


@pytest.fixture(scope="module")
def titan_fitted(titan_campaign):
    return fit_campaign(titan_campaign)


class TestCampaignStructure:
    def test_components_present(self, titan_campaign):
        assert len(titan_campaign.intensity_single) > 20
        assert len(titan_campaign.intensity_double) > 20
        assert set(titan_campaign.cache_obs) == {"L1", "L2"}
        assert len(titan_campaign.chase_obs) >= 2
        assert len(titan_campaign.peak_single) >= 2
        assert len(titan_campaign.stream_obs) >= 2

    def test_n_runs_counts_everything(self, titan_campaign):
        total = (
            len(titan_campaign.intensity_single)
            + len(titan_campaign.intensity_double)
            + sum(len(v) for v in titan_campaign.cache_obs.values())
            + len(titan_campaign.chase_obs)
            + len(titan_campaign.peak_single)
            + len(titan_campaign.peak_double)
            + len(titan_campaign.stream_obs)
        )
        assert titan_campaign.n_runs == total

    def test_opt_outs(self):
        campaign = run_campaign(
            platform("arndale-cpu"),
            seed=0,
            replicates=1,
            include_double=False,
            include_cache=False,
            include_chase=False,
        )
        assert campaign.intensity_double == []
        assert campaign.cache_obs == {}
        assert campaign.chase_obs == []

    def test_platform_without_double_skips_it(self):
        campaign = run_campaign(platform("arndale-gpu"), seed=0, replicates=1)
        assert campaign.intensity_double == []
        assert campaign.peak_double == []


class TestToFitObservations:
    def test_columns(self, titan_campaign):
        obs = to_fit_observations(titan_campaign.single_precision_runs)
        assert obs.n == len(titan_campaign.single_precision_runs)
        assert set(obs.levels) == {"L1", "L2"}
        assert obs.has_random

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            to_fit_observations([])


class TestParameterRecovery:
    def test_core_parameters_recovered(self, titan_fitted):
        truth = titan_fitted.truth
        fitted = titan_fitted.capped.params
        assert fitted.tau_flop == pytest.approx(truth.tau_flop, rel=0.08)
        assert fitted.tau_mem == pytest.approx(truth.tau_mem, rel=0.08)
        assert fitted.eps_flop == pytest.approx(truth.eps_flop, rel=0.15)
        assert fitted.eps_mem == pytest.approx(truth.eps_mem, rel=0.15)
        assert fitted.pi1 == pytest.approx(truth.pi1, rel=0.10)
        assert fitted.delta_pi == pytest.approx(truth.delta_pi, rel=0.15)

    def test_hierarchy_recovered(self, titan_fitted):
        truth = titan_fitted.truth
        caches = {c.name: c for c in titan_fitted.caches}
        for name in ("L1", "L2"):
            assert caches[name].eps_byte == pytest.approx(
                truth.cache_level(name).eps_byte, rel=0.3
            )
            assert caches[name].capacity == truth.cache_level(name).capacity
        assert titan_fitted.random.eps_access == pytest.approx(
            truth.random.eps_access, rel=0.3
        )

    def test_double_precision_recovered(self, titan_fitted):
        truth = titan_fitted.truth
        assert titan_fitted.eps_flop_double == pytest.approx(
            truth.eps_flop_double, rel=0.2
        )
        assert titan_fitted.sustained_flops_double == pytest.approx(
            1.0 / truth.tau_flop_double, rel=0.1
        )

    def test_fitted_params_assemble(self, titan_fitted):
        row = titan_fitted.fitted_params
        assert row.name == "GTX Titan"
        assert row.eps_flop_double is not None
        assert row.random is not None
        assert len(row.caches) == 2

    def test_sustained_peaks(self, titan_fitted):
        truth = titan_fitted.truth
        assert titan_fitted.sustained_flops == pytest.approx(
            truth.peak_flops, rel=0.05
        )
        assert titan_fitted.sustained_bandwidth == pytest.approx(
            truth.peak_bandwidth, rel=0.05
        )

    def test_capped_fit_beats_uncapped(self, titan_fitted):
        assert (
            titan_fitted.capped.diagnostics.rms_log_residual
            <= titan_fitted.uncapped.diagnostics.rms_log_residual + 1e-12
        )


class TestCrossCheckEstimators:
    """The standalone per-level estimators agree with the joint fit."""

    def test_cache_level_cross_check(self, titan_campaign, titan_fitted):
        pi1 = titan_fitted.capped.params.pi1
        obs = titan_campaign.cache_obs["L2"]
        standalone = fit_cache_level(
            "L2",
            Q=np.array([o.kernel.traffic["L2"] for o in obs]),
            T=np.array([o.wall_time for o in obs]),
            E=np.array([o.energy for o in obs]),
            pi1=pi1,
        )
        joint = next(c for c in titan_fitted.caches if c.name == "L2")
        assert standalone.eps_byte == pytest.approx(joint.eps_byte, rel=0.15)

    def test_random_cross_check(self, titan_campaign, titan_fitted):
        pi1 = titan_fitted.capped.params.pi1
        obs = titan_campaign.chase_obs
        standalone = fit_random_access(
            accesses=np.array([o.kernel.random_accesses for o in obs]),
            T=np.array([o.wall_time for o in obs]),
            E=np.array([o.energy for o in obs]),
            pi1=pi1,
        )
        assert standalone.eps_access == pytest.approx(
            titan_fitted.random.eps_access, rel=0.2
        )


class TestDeterminism:
    def test_same_seed_same_campaign(self):
        cfg = platform("pandaboard-es")
        a = run_campaign(cfg, seed=9, replicates=1, include_double=False)
        b = run_campaign(cfg, seed=9, replicates=1, include_double=False)
        ta = [o.wall_time for o in a.single_precision_runs]
        tb = [o.wall_time for o in b.single_precision_runs]
        assert ta == tb

    def test_different_seed_differs(self):
        cfg = platform("pandaboard-es")
        a = run_campaign(cfg, seed=9, replicates=1, include_double=False)
        b = run_campaign(cfg, seed=10, replicates=1, include_double=False)
        ta = [o.wall_time for o in a.single_precision_runs]
        tb = [o.wall_time for o in b.single_precision_runs]
        assert ta != tb
