"""Shared fixtures.

Campaign-derived fixtures are session-scoped: the full 12-platform
campaign-and-fit pass takes a few seconds and several experiment test
modules consume it, so it runs once.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings as hypothesis_settings

# Deterministic property tests: the suite is a reproduction artifact,
# so its verdict should not depend on the run's entropy.
hypothesis_settings.register_profile(
    "repro",
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)
hypothesis_settings.load_profile("repro")

from repro.core.params import CacheLevelParams, MachineParams, RandomAccessParams
from repro.experiments.common import CampaignSettings, run_all_fits
from repro.machine.platforms import all_platforms, platform


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate tests/data/golden_fits.json from the current "
        "code instead of comparing against it",
    )


@pytest.fixture(scope="session")
def platforms():
    """All twelve platform configs."""
    return all_platforms()


@pytest.fixture(scope="session")
def titan():
    """GTX Titan ground-truth parameters."""
    return platform("gtx-titan").truth


@pytest.fixture(scope="session")
def arndale_gpu():
    """Arndale GPU ground-truth parameters."""
    return platform("arndale-gpu").truth


@pytest.fixture(scope="session")
def xeon_phi():
    """Xeon Phi ground-truth parameters."""
    return platform("xeon-phi").truth


@pytest.fixture
def simple_machine():
    """A hand-made machine with round numbers for closed-form checks.

    peak 100 Gflop/s, 10 GB/s, B_tau = 10 flop/B; eps_flop = 10 pJ,
    eps_mem = 100 pJ (B_eps = 10); pi_flop = 1 W, pi_mem = 1 W;
    pi1 = 5 W; delta_pi = 1.5 W (capped: 1.5 < 2 = pi_f + pi_m).
    """
    return MachineParams.from_throughputs(
        "simple",
        flops=100e9,
        bandwidth=10e9,
        eps_flop=10e-12,
        eps_mem=100e-12,
        pi1=5.0,
        delta_pi=1.5,
        flops_double=50e9,
        eps_flop_double=20e-12,
        caches=(
            CacheLevelParams("L1", eps_byte=10e-12, bandwidth=100e9, capacity=32 * 1024),
            CacheLevelParams("L2", eps_byte=20e-12, bandwidth=50e9, capacity=512 * 1024),
        ),
        random=RandomAccessParams(eps_access=10e-9, rate=100e6),
    )


@pytest.fixture
def uncapped_machine(simple_machine):
    """The same machine without a power cap."""
    return simple_machine.uncapped()


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def quick_settings():
    """Reduced campaign settings for cheap integration tests."""
    return CampaignSettings().scaled_down()


@pytest.fixture(scope="session")
def all_fits():
    """Full-fidelity campaign fits for all twelve platforms (shared)."""
    return run_all_fits(CampaignSettings())


@pytest.fixture(scope="session")
def titan_fit(all_fits):
    return all_fits["gtx-titan"]
