"""Legacy build shim.

The offline environment lacks the `wheel` package, which setuptools'
PEP 660 editable-install path requires; without a [build-system] table
pip falls back to `setup.py develop`, which works with setuptools alone.
All project metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
